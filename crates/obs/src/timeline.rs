//! Per-rank flight recorder: state intervals, matched message records, and
//! the analyses that explain a run's makespan (wait-state attribution à la
//! Scalasca, a P×P communication matrix, critical-path extraction) plus
//! Chrome-trace and text exporters.
//!
//! The recorder follows the same determinism contract as the rest of
//! `grads-obs`: every timestamp is supplied by the caller from `ctx.now()`
//! (the recorder never reads time itself), the kernel serializes all
//! recording calls so append order is reproducible, and a disabled
//! [`Recorder`] handle turns every call into a single `Option` test with no
//! allocation. Crucially, the recorder never stores the kernel's world ids
//! (they come from a process-global counter and differ between two runs in
//! the same process); worlds are identified by the deterministic ordinal
//! assigned at [`Recorder::register_world`] time.
//!
//! Raw operations (intervals, send/recv halves, bridges) are appended
//! during the run; [`Recorder::timeline`] builds the analyzed [`Timeline`]
//! afterwards: halves are matched FIFO per `(world, src, dst, tag)` —
//! valid because the communicator's non-overtaking design delivers same-key
//! messages in post order — and per-track intervals are sorted by start
//! time (they are appended in completion order, which can interleave only
//! across tracks, never within one).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// What a rank is doing over one interval of virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RankState {
    /// Charged computation (`Comm::compute`).
    Compute,
    /// Blocked in a point-to-point send (rendezvous wait).
    SendBlocked,
    /// Blocked in a point-to-point receive.
    RecvBlocked,
    /// Inside a collective operation (outermost call; inner messages are
    /// recorded as message halves flagged collective).
    Collective,
    /// Inactive in a swap world, waiting for activation.
    SwappedOut,
    /// Migration downtime: shipping swap state, or the stop → checkpoint →
    /// rebind → relaunch window bridged across incarnations.
    Migrating,
    /// Nothing recorded (derived from gaps, never recorded explicitly).
    Idle,
}

impl RankState {
    /// Stable display name (used by both exporters).
    pub fn name(self) -> &'static str {
        match self {
            RankState::Compute => "Compute",
            RankState::SendBlocked => "SendBlocked",
            RankState::RecvBlocked => "RecvBlocked",
            RankState::Collective => "Collective",
            RankState::SwappedOut => "SwappedOut",
            RankState::Migrating => "Migrating",
            RankState::Idle => "Idle",
        }
    }
}

/// How a matched message was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// User point-to-point traffic.
    Pt2pt,
    /// Traffic inside a collective operation.
    Collective,
    /// Swap-state handoff between physical slots (excluded from the
    /// communication matrix; it is middleware, not application traffic).
    Swap,
}

/// Deterministic world ordinal assigned by [`Recorder::register_world`].
///
/// This — not the kernel's global world id — keys every recorded
/// operation, so two runs in one process produce identical timelines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorldTag(pub u32);

impl WorldTag {
    /// Sentinel returned by a disabled recorder; recording calls carrying
    /// it are ignored.
    pub const NONE: WorldTag = WorldTag(u32::MAX);
}

/// Index of one per-rank track in the built [`Timeline`] (and in the raw
/// log; the two orderings are identical).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TrackId(pub u32);

// ---------------------------------------------------------------------
// Raw log (write side)
// ---------------------------------------------------------------------

#[derive(Debug)]
struct WorldMeta {
    name: String,
    base: u32,
    n: u32,
}

#[derive(Debug)]
struct TrackMeta {
    world: u32,
    rank: u32,
    host: String,
    start: f64,
    end: f64,
    started: bool,
    ended: bool,
}

#[derive(Debug)]
struct RawInterval {
    track: u32,
    state: RankState,
    detail: Option<&'static str>,
    t0: f64,
    t1: f64,
}

#[derive(Debug)]
struct RawSend {
    track: u32,
    src: u32,
    dst: u32,
    tag: u64,
    bytes: f64,
    t_post: f64,
    t_complete: f64,
    eager: bool,
    kind: MsgKind,
}

#[derive(Debug)]
struct RawRecv {
    track: u32,
    src: u32,
    dst: u32,
    tag: u64,
    t_post: f64,
    t_complete: f64,
}

#[derive(Debug)]
struct RawBridge {
    from_track: u32,
    t_from: f64,
    to_world: u32,
    label: &'static str,
}

#[derive(Debug, Default)]
struct TimelineLog {
    worlds: Vec<WorldMeta>,
    tracks: Vec<TrackMeta>,
    intervals: Vec<RawInterval>,
    /// Per-hop spans nested inside collectives / swap handoffs; only
    /// populated when `internals` is set (see
    /// [`Recorder::enabled_with_internals`]).
    hops: Vec<RawInterval>,
    sends: Vec<RawSend>,
    recvs: Vec<RawRecv>,
    bridges: Vec<RawBridge>,
    pid_track: HashMap<u32, u32>,
    internals: bool,
}

impl TimelineLog {
    fn track_of(&self, w: WorldTag, rank: usize) -> Option<u32> {
        let wm = self.worlds.get(w.0 as usize)?;
        let r = rank as u32;
        (r < wm.n).then_some(wm.base + r)
    }
}

/// Handle to one flight-recorder log. Cloning shares the log (`Arc`
/// inside); the default handle is disabled and records nothing.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Mutex<TimelineLog>>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Recorder {
    /// A recording handle with an empty log.
    pub fn enabled() -> Self {
        Recorder {
            inner: Some(Arc::new(Mutex::new(TimelineLog::default()))),
        }
    }

    /// A recording handle that additionally records *collective
    /// internals*: per-hop send/recv spans inside collective trees and
    /// swap handoffs (see [`Recorder::hop`]). Internals never change the
    /// simulated run — the hop spans reuse timestamps their callers
    /// already read — they only add nested [`Track::hops`] to the built
    /// [`Timeline`], making wait-state attribution and the critical path
    /// honest for bcast-heavy applications.
    pub fn enabled_with_internals() -> Self {
        Recorder {
            inner: Some(Arc::new(Mutex::new(TimelineLog {
                internals: true,
                ..TimelineLog::default()
            }))),
        }
    }

    /// A no-op handle: every recording call returns after one `Option`
    /// test. This is the `Default`.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// Whether per-hop collective internals are being recorded.
    pub fn internals_enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.lock().internals)
    }

    /// Record one per-hop span nested inside a collective operation (or a
    /// swap handoff) on `(world, track_rank)`. `detail` names the
    /// enclosing operation (`"bcast"`, `"reduce"`, `"handoff"`, …). No-op
    /// unless the handle was created with
    /// [`Recorder::enabled_with_internals`].
    #[inline]
    pub fn hop(
        &self,
        w: WorldTag,
        track_rank: usize,
        state: RankState,
        detail: Option<&'static str>,
        t0: f64,
        t1: f64,
    ) {
        if let Some(i) = &self.inner {
            let mut log = i.lock();
            if !log.internals {
                return;
            }
            if let Some(track) = log.track_of(w, track_rank) {
                log.hops.push(RawInterval {
                    track,
                    state,
                    detail,
                    t0,
                    t1,
                });
            }
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Register a world and one track per rank. `rank_hosts[r]` is the
    /// human-readable host label serving rank `r` (for swap worlds, pass
    /// one label per *physical slot*; tracks then follow slots, not
    /// logical ranks). Returns the world's deterministic ordinal, or
    /// [`WorldTag::NONE`] on a disabled handle.
    pub fn register_world(&self, name: &str, rank_hosts: &[String]) -> WorldTag {
        let Some(i) = &self.inner else {
            return WorldTag::NONE;
        };
        let mut log = i.lock();
        let w = log.worlds.len() as u32;
        let base = log.tracks.len() as u32;
        for (r, host) in rank_hosts.iter().enumerate() {
            log.tracks.push(TrackMeta {
                world: w,
                rank: r as u32,
                host: host.clone(),
                start: 0.0,
                end: 0.0,
                started: false,
                ended: false,
            });
        }
        log.worlds.push(WorldMeta {
            name: name.to_string(),
            base,
            n: rank_hosts.len() as u32,
        });
        WorldTag(w)
    }

    /// Record a state interval `[t0, t1]` on `(world, track_rank)`.
    #[inline]
    pub fn interval(&self, w: WorldTag, track_rank: usize, state: RankState, t0: f64, t1: f64) {
        self.interval_detail(w, track_rank, state, None, t0, t1);
    }

    /// Record a state interval carrying a detail label (collective op
    /// names, swap reasons).
    #[inline]
    pub fn interval_detail(
        &self,
        w: WorldTag,
        track_rank: usize,
        state: RankState,
        detail: Option<&'static str>,
        t0: f64,
        t1: f64,
    ) {
        if let Some(i) = &self.inner {
            let mut log = i.lock();
            if let Some(track) = log.track_of(w, track_rank) {
                log.intervals.push(RawInterval {
                    track,
                    state,
                    detail,
                    t0,
                    t1,
                });
            }
        }
    }

    /// Record the send half of a message. `track_rank` locates the sender's
    /// track; `src`/`dst` are the logical ranks used for matching.
    #[inline]
    #[allow(clippy::too_many_arguments)] // flat caller-timestamped record
    pub fn send_msg(
        &self,
        w: WorldTag,
        track_rank: usize,
        src: usize,
        dst: usize,
        tag: u64,
        bytes: f64,
        t_post: f64,
        t_complete: f64,
        eager: bool,
        kind: MsgKind,
    ) {
        if let Some(i) = &self.inner {
            let mut log = i.lock();
            if let Some(track) = log.track_of(w, track_rank) {
                log.sends.push(RawSend {
                    track,
                    src: src as u32,
                    dst: dst as u32,
                    tag,
                    bytes,
                    t_post,
                    t_complete,
                    eager,
                    kind,
                });
            }
        }
    }

    /// Record the receive half of a message.
    #[inline]
    #[allow(clippy::too_many_arguments)] // flat caller-timestamped record
    pub fn recv_msg(
        &self,
        w: WorldTag,
        track_rank: usize,
        src: usize,
        dst: usize,
        tag: u64,
        t_post: f64,
        t_complete: f64,
    ) {
        if let Some(i) = &self.inner {
            let mut log = i.lock();
            if let Some(track) = log.track_of(w, track_rank) {
                log.recvs.push(RawRecv {
                    track,
                    src: src as u32,
                    dst: dst as u32,
                    tag,
                    t_post,
                    t_complete,
                });
            }
        }
    }

    /// Record a causal bridge: every track of `to_w` exists because of
    /// `(from_w, from_rank)` at `t_from` — e.g. a restarted incarnation
    /// whose relaunch was triggered by the previous incarnation's stop.
    /// The critical-path walk charges `[t_from, track start]` as
    /// [`RankState::Migrating`] and continues on the origin track.
    pub fn bridge(&self, from_w: WorldTag, from_rank: usize, t_from: f64, to_w: WorldTag) {
        if let Some(i) = &self.inner {
            let mut log = i.lock();
            let (Some(from_track), true) = (
                log.track_of(from_w, from_rank),
                (to_w.0 as usize) < log.worlds.len(),
            ) else {
                return;
            };
            log.bridges.push(RawBridge {
                from_track,
                t_from,
                to_world: to_w.0,
                label: "migrate",
            });
        }
    }

    /// Bind a kernel process id to `(world, track_rank)` so the engine's
    /// lifecycle hooks can stamp track start/end times.
    pub fn bind_pid(&self, pid: u32, w: WorldTag, track_rank: usize) {
        if let Some(i) = &self.inner {
            let mut log = i.lock();
            if let Some(track) = log.track_of(w, track_rank) {
                log.pid_track.insert(pid, track);
            }
        }
    }

    /// Engine hook: the bound process started at virtual time `t`.
    #[inline]
    pub fn track_start(&self, pid: u32, t: f64) {
        if let Some(i) = &self.inner {
            let mut log = i.lock();
            if let Some(&track) = log.pid_track.get(&pid) {
                let tm = &mut log.tracks[track as usize];
                tm.start = t;
                tm.started = true;
            }
        }
    }

    /// Engine hook: the bound process exited (or died) at virtual time `t`.
    #[inline]
    pub fn track_end(&self, pid: u32, t: f64) {
        if let Some(i) = &self.inner {
            let mut log = i.lock();
            if let Some(&track) = log.pid_track.get(&pid) {
                let tm = &mut log.tracks[track as usize];
                if !tm.ended {
                    tm.end = t;
                    tm.ended = true;
                }
            }
        }
    }

    /// Engine hook: close every still-open track at the run's end time
    /// (processes alive at a `run_until` cutoff).
    pub fn close_open_tracks(&self, t: f64) {
        if let Some(i) = &self.inner {
            let mut log = i.lock();
            for tm in &mut log.tracks {
                if tm.started && !tm.ended {
                    tm.end = t;
                    tm.ended = true;
                }
            }
        }
    }

    /// Build the analyzed timeline from everything recorded so far.
    /// Disabled handles return an empty timeline.
    pub fn timeline(&self) -> Timeline {
        match &self.inner {
            Some(i) => Timeline::build(&i.lock()),
            None => Timeline::default(),
        }
    }
}

// ---------------------------------------------------------------------
// Built timeline (read side)
// ---------------------------------------------------------------------

/// One registered world in a built [`Timeline`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorldInfo {
    /// Deterministic ordinal.
    pub tag: WorldTag,
    /// Registration name (e.g. `"qr-e0"`).
    pub name: String,
    /// Number of tracks (ranks or physical slots).
    pub n_ranks: usize,
    /// Index of rank 0's track in [`Timeline::tracks`].
    pub base_track: TrackId,
}

/// A state interval on one track.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// What the rank was doing.
    pub state: RankState,
    /// Optional detail label (collective op name).
    pub detail: Option<&'static str>,
    /// Interval start, virtual seconds.
    pub t0: f64,
    /// Interval end, virtual seconds.
    pub t1: f64,
}

/// One per-rank track: lifecycle bounds plus its recorded intervals,
/// sorted by start time.
#[derive(Debug, Clone, PartialEq)]
pub struct Track {
    /// Owning world.
    pub world: WorldTag,
    /// Rank (or physical slot, for swap worlds) within the world.
    pub rank: usize,
    /// Host label serving this track.
    pub host: String,
    /// Process start time (0 if the process never started).
    pub start: f64,
    /// Process end time.
    pub end: f64,
    /// Whether the process actually started.
    pub live: bool,
    /// State intervals, sorted by `t0`.
    pub intervals: Vec<Interval>,
    /// Per-hop spans nested inside collective / swap-handoff intervals,
    /// sorted by `t0`. Empty unless the recorder was created with
    /// [`Recorder::enabled_with_internals`]. Within one enclosing
    /// [`RankState::Collective`] interval the hops tile it exactly: the
    /// first hop starts at the interval start, consecutive hops share
    /// endpoints bitwise, and the last hop ends at the interval end.
    pub hops: Vec<Interval>,
}

/// A fully matched message: one send half paired with one receive half.
#[derive(Debug, Clone, PartialEq)]
pub struct MsgRecord {
    /// Owning world.
    pub world: WorldTag,
    /// Logical source rank.
    pub src_rank: usize,
    /// Logical destination rank.
    pub dst_rank: usize,
    /// Message tag.
    pub tag: u64,
    /// Payload size on the wire.
    pub bytes: f64,
    /// Eager (buffered) vs. rendezvous protocol.
    pub eager: bool,
    /// Message class.
    pub kind: MsgKind,
    /// Track that recorded the send half.
    pub src_track: TrackId,
    /// Track that recorded the receive half.
    pub dst_track: TrackId,
    /// When the sender posted the send.
    pub t_send_post: f64,
    /// When the send call returned.
    pub t_send_complete: f64,
    /// When the receiver posted the receive.
    pub t_recv_post: f64,
    /// When the receive call returned with the payload.
    pub t_recv_complete: f64,
    /// When both sides were posted: `t_send_post` for eager messages,
    /// `max(t_send_post, t_recv_post)` for rendezvous.
    pub t_match: f64,
}

/// A causal bridge resolved against a destination track.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bridge {
    /// Origin track.
    pub from_track: TrackId,
    /// Time on the origin track the bridge leaves from.
    pub t_from: f64,
    /// Label (currently always `"migrate"`).
    pub label: &'static str,
}

/// The analyzed flight-recorder output: per-rank tracks, matched messages,
/// and cross-incarnation bridges.
///
/// `PartialEq` is bitwise on every float, so two runs compare equal only if
/// they recorded numerically identical timelines — the determinism
/// regression compares [`Timeline`]s directly.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Timeline {
    /// Registered worlds, in registration order.
    pub worlds: Vec<WorldInfo>,
    /// All tracks, world-major then rank order.
    pub tracks: Vec<Track>,
    /// Matched messages, in receive-completion record order.
    pub msgs: Vec<MsgRecord>,
    /// `track index → bridge` for tracks born from another incarnation.
    pub bridges: Vec<Option<Bridge>>,
    /// Send halves that never matched a receive (e.g. in flight at a
    /// cutoff).
    pub unmatched_sends: usize,
    /// Receive halves that never matched a send.
    pub unmatched_recvs: usize,
}

impl Timeline {
    fn build(log: &TimelineLog) -> Timeline {
        let worlds: Vec<WorldInfo> = log
            .worlds
            .iter()
            .enumerate()
            .map(|(i, w)| WorldInfo {
                tag: WorldTag(i as u32),
                name: w.name.clone(),
                n_ranks: w.n as usize,
                base_track: TrackId(w.base),
            })
            .collect();
        let mut tracks: Vec<Track> = log
            .tracks
            .iter()
            .map(|tm| Track {
                world: WorldTag(tm.world),
                rank: tm.rank as usize,
                host: tm.host.clone(),
                start: tm.start,
                end: tm.end,
                live: tm.started,
                intervals: Vec::new(),
                hops: Vec::new(),
            })
            .collect();
        for iv in &log.intervals {
            tracks[iv.track as usize].intervals.push(Interval {
                state: iv.state,
                detail: iv.detail,
                t0: iv.t0,
                t1: iv.t1,
            });
        }
        for h in &log.hops {
            tracks[h.track as usize].hops.push(Interval {
                state: h.state,
                detail: h.detail,
                t0: h.t0,
                t1: h.t1,
            });
        }
        // Within one track, intervals are appended in completion order and
        // never overlap, so a stable sort by start time is a total order.
        // The same holds for hops (a rank is inside at most one
        // send/recv call at a time).
        for t in &mut tracks {
            t.intervals.sort_by(|a, b| a.t0.total_cmp(&b.t0));
            t.hops.sort_by(|a, b| a.t0.total_cmp(&b.t0));
        }

        // FIFO matching per (world-of-track, src, dst, tag). World is
        // derived from the recording track, so two worlds reusing ranks and
        // tags can never cross-match.
        let mut queues: HashMap<(u32, u32, u32, u64), std::collections::VecDeque<usize>> =
            HashMap::new();
        for (i, s) in log.sends.iter().enumerate() {
            let w = log.tracks[s.track as usize].world;
            queues
                .entry((w, s.src, s.dst, s.tag))
                .or_default()
                .push_back(i);
        }
        let mut msgs = Vec::with_capacity(log.recvs.len());
        let mut unmatched_recvs = 0usize;
        let mut matched_sends = 0usize;
        for r in &log.recvs {
            let w = log.tracks[r.track as usize].world;
            let Some(si) = queues
                .get_mut(&(w, r.src, r.dst, r.tag))
                .and_then(|q| q.pop_front())
            else {
                unmatched_recvs += 1;
                continue;
            };
            matched_sends += 1;
            let s = &log.sends[si];
            let t_match = if s.eager {
                s.t_post
            } else {
                s.t_post.max(r.t_post)
            };
            msgs.push(MsgRecord {
                world: WorldTag(w),
                src_rank: s.src as usize,
                dst_rank: s.dst as usize,
                tag: s.tag,
                bytes: s.bytes,
                eager: s.eager,
                kind: s.kind,
                src_track: TrackId(s.track),
                dst_track: TrackId(r.track),
                t_send_post: s.t_post,
                t_send_complete: s.t_complete,
                t_recv_post: r.t_post,
                t_recv_complete: r.t_complete,
                t_match,
            });
        }

        let mut bridges: Vec<Option<Bridge>> = vec![None; tracks.len()];
        for b in &log.bridges {
            let wm = &log.worlds[b.to_world as usize];
            for r in 0..wm.n {
                bridges[(wm.base + r) as usize] = Some(Bridge {
                    from_track: TrackId(b.from_track),
                    t_from: b.t_from,
                    label: b.label,
                });
            }
        }

        Timeline {
            worlds,
            tracks,
            msgs,
            bridges,
            unmatched_sends: log.sends.len() - matched_sends,
            unmatched_recvs,
        }
    }

    /// The latest track end time — the virtual makespan of the recorded
    /// application worlds. (Slightly below the kernel's `end_time` when
    /// untracked middleware — managers, sensors — winds down after the
    /// last rank exits.)
    pub fn makespan(&self) -> f64 {
        self.tracks
            .iter()
            .filter(|t| t.live)
            .map(|t| t.end)
            .fold(0.0, f64::max)
    }

    /// Tracks of one world, in rank order.
    pub fn world_tracks(&self, w: WorldTag) -> &[Track] {
        let Some(wi) = self.worlds.get(w.0 as usize) else {
            return &[];
        };
        let b = wi.base_track.0 as usize;
        &self.tracks[b..b + wi.n_ranks]
    }

    // -----------------------------------------------------------------
    // Wait-state attribution
    // -----------------------------------------------------------------

    /// Per-track utilisation and wait-state breakdown. One entry per live
    /// track, in track order.
    pub fn rank_stats(&self) -> Vec<RankBreakdown> {
        // Index recv completions and rendezvous-send completions by
        // (track, completion-time bits) for exact interval↔message joins:
        // a blocked interval's end is the same `ctx.now()` read as its
        // message's completion stamp, so bit equality is the right join.
        let mut recv_at: HashMap<(u32, u64), usize> = HashMap::new();
        let mut send_at: HashMap<(u32, u64), usize> = HashMap::new();
        for (i, m) in self.msgs.iter().enumerate() {
            recv_at.insert((m.dst_track.0, m.t_recv_complete.to_bits()), i);
            if !m.eager {
                send_at.insert((m.src_track.0, m.t_send_complete.to_bits()), i);
            }
        }
        let mut out = Vec::new();
        for (ti, t) in self.tracks.iter().enumerate() {
            if !t.live {
                continue;
            }
            let mut b = RankBreakdown {
                track: TrackId(ti as u32),
                world: t.world,
                rank: t.rank,
                host: t.host.clone(),
                span: (t.end - t.start).max(0.0),
                ..RankBreakdown::default()
            };
            let mut busy = 0.0;
            for iv in &t.intervals {
                let d = iv.t1 - iv.t0;
                busy += d;
                match iv.state {
                    RankState::Compute => b.compute += d,
                    RankState::SendBlocked => {
                        b.send_wait += d;
                        if let Some(&mi) = send_at.get(&(ti as u32, iv.t1.to_bits())) {
                            let m = &self.msgs[mi];
                            b.late_receiver += (m.t_recv_post.min(iv.t1) - iv.t0).max(0.0);
                        }
                    }
                    RankState::RecvBlocked => {
                        b.recv_wait += d;
                        if let Some(&mi) = recv_at.get(&(ti as u32, iv.t1.to_bits())) {
                            let m = &self.msgs[mi];
                            b.late_sender += (m.t_send_post.min(iv.t1) - iv.t0).max(0.0);
                        }
                    }
                    RankState::Collective => b.collective += d,
                    RankState::SwappedOut => b.swapped_out += d,
                    RankState::Migrating => b.migrating += d,
                    RankState::Idle => {}
                }
            }
            // Hop spans split the opaque Collective block into its tree
            // legs; swap-handoff hops stay out (already charged to
            // Migrating / SwappedOut above).
            for h in t.hops.iter().filter(|h| h.detail != Some("handoff")) {
                let d = h.t1 - h.t0;
                match h.state {
                    RankState::SendBlocked => b.coll_send_wait += d,
                    RankState::RecvBlocked => {
                        b.coll_recv_wait += d;
                        if let Some(&mi) = recv_at.get(&(ti as u32, h.t1.to_bits())) {
                            let m = &self.msgs[mi];
                            b.coll_late_sender += (m.t_send_post.min(h.t1) - h.t0).max(0.0);
                        }
                    }
                    _ => {}
                }
            }
            b.idle = (b.span - busy).max(0.0);
            out.push(b);
        }
        out
    }

    // -----------------------------------------------------------------
    // Communication matrix
    // -----------------------------------------------------------------

    /// P×P matrix of application traffic (point-to-point + collective;
    /// swap handoffs excluded) for one world, indexed by logical rank.
    pub fn comm_matrix(&self, w: WorldTag) -> CommMatrix {
        let n = self
            .worlds
            .get(w.0 as usize)
            .map(|wi| wi.n_ranks)
            .unwrap_or(0);
        let mut m = CommMatrix {
            n,
            count: vec![0; n * n],
            bytes: vec![0.0; n * n],
            latency_sum: vec![0.0; n * n],
        };
        for msg in &self.msgs {
            if msg.world != w || msg.kind == MsgKind::Swap {
                continue;
            }
            let (s, d) = (msg.src_rank, msg.dst_rank);
            if s >= n || d >= n {
                continue;
            }
            let i = s * n + d;
            m.count[i] += 1;
            m.bytes[i] += msg.bytes;
            m.latency_sum[i] += msg.t_recv_complete - msg.t_send_post;
        }
        m
    }

    // -----------------------------------------------------------------
    // Critical path
    // -----------------------------------------------------------------

    /// Extract the critical path: the backward walk from the last-finishing
    /// track through matched message edges and incarnation bridges down to
    /// t = 0. Returned segments are contiguous in time (forward order) and
    /// their durations sum *exactly* to [`Timeline::makespan`] — each step
    /// charges precisely the span it walks back over.
    ///
    /// Collective-internal message halves are walk edges like any other,
    /// so the path goes *through* binomial trees and charges the rank that
    /// actually delayed the operation — the honest attribution. Compare
    /// with [`Timeline::critical_path_opaque`] to measure what opacity
    /// would mis-attribute.
    pub fn critical_path(&self) -> Vec<PathSegment> {
        self.critical_path_walk(true)
    }

    /// The critical path with collectives treated as *opaque blocks*:
    /// edges through [`MsgKind::Collective`] messages are ignored, so time
    /// inside a collective is charged wholesale to whichever rank the walk
    /// lands on, never to the subtree that actually set its exit time.
    /// This is the dishonest baseline most tools ship; it tiles
    /// `[0, makespan]` just like the honest walk, but its per-host
    /// attribution differs for bcast-heavy applications.
    pub fn critical_path_opaque(&self) -> Vec<PathSegment> {
        self.critical_path_walk(false)
    }

    fn critical_path_walk(&self, through_collectives: bool) -> Vec<PathSegment> {
        let Some(last) = self
            .tracks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.live)
            .max_by(|(ai, a), (bi, b)| a.end.total_cmp(&b.end).then(bi.cmp(ai)))
            .map(|(i, _)| i)
        else {
            return Vec::new();
        };
        // Per-track message indices sorted by completion time, for the
        // "which edge unblocked this interval" query.
        let mut recv_by: HashMap<u32, Vec<usize>> = HashMap::new();
        let mut send_by: HashMap<u32, Vec<usize>> = HashMap::new();
        for (i, m) in self.msgs.iter().enumerate() {
            if !through_collectives && m.kind == MsgKind::Collective {
                continue;
            }
            recv_by.entry(m.dst_track.0).or_default().push(i);
            if !m.eager {
                send_by.entry(m.src_track.0).or_default().push(i);
            }
        }
        for v in recv_by.values_mut() {
            v.sort_by(|&a, &b| {
                self.msgs[a]
                    .t_recv_complete
                    .total_cmp(&self.msgs[b].t_recv_complete)
            });
        }
        for v in send_by.values_mut() {
            v.sort_by(|&a, &b| {
                self.msgs[a]
                    .t_send_complete
                    .total_cmp(&self.msgs[b].t_send_complete)
            });
        }

        let mut segs: Vec<PathSegment> = Vec::new();
        let mut cur = last;
        let mut t = self.tracks[cur].end;
        while t > 0.0 {
            let tr = &self.tracks[cur];
            if t <= tr.start {
                // Track birth: cross an incarnation bridge if one explains
                // this track, else charge the pre-start span as Idle.
                if let Some(b) = self.bridges[cur] {
                    if b.t_from < t {
                        segs.push(PathSegment {
                            track: TrackId(cur as u32),
                            kind: SegKind::Bridge {
                                from: b.from_track,
                                label: b.label,
                            },
                            t0: b.t_from,
                            t1: t,
                        });
                        cur = b.from_track.0 as usize;
                        t = b.t_from;
                        continue;
                    }
                }
                segs.push(PathSegment {
                    track: TrackId(cur as u32),
                    kind: SegKind::State(RankState::Idle),
                    t0: 0.0,
                    t1: t,
                });
                break;
            }
            // Latest interval starting before t.
            let idx = tr.intervals.partition_point(|iv| iv.t0 < t);
            if idx == 0 {
                segs.push(PathSegment {
                    track: TrackId(cur as u32),
                    kind: SegKind::State(RankState::Idle),
                    t0: tr.start,
                    t1: t,
                });
                t = tr.start;
                continue;
            }
            let iv = tr.intervals[idx - 1];
            if iv.t1 < t {
                segs.push(PathSegment {
                    track: TrackId(cur as u32),
                    kind: SegKind::State(RankState::Idle),
                    t0: iv.t1,
                    t1: t,
                });
                t = iv.t1;
                continue;
            }
            // t lies in (iv.t0, iv.t1]. Find the edge that unblocked the
            // interval: the latest message completion inside it. Only
            // candidates that make progress (t_match < t) are eligible.
            let mut best: Option<(f64, bool, usize)> = None; // (complete, is_recv, msg)
            if let Some(v) = recv_by.get(&(cur as u32)) {
                let hi = v.partition_point(|&i| self.msgs[i].t_recv_complete <= t);
                for &mi in v[..hi].iter().rev() {
                    let m = &self.msgs[mi];
                    if m.t_recv_complete <= iv.t0 {
                        break;
                    }
                    if m.t_match < t {
                        best = Some((m.t_recv_complete, true, mi));
                        break;
                    }
                }
            }
            if let Some(v) = send_by.get(&(cur as u32)) {
                let hi = v.partition_point(|&i| self.msgs[i].t_send_complete <= t);
                for &mi in v[..hi].iter().rev() {
                    let m = &self.msgs[mi];
                    if m.t_send_complete <= iv.t0 {
                        break;
                    }
                    if m.t_match < t {
                        let better = match best {
                            None => true,
                            Some((c, _, _)) => m.t_send_complete > c,
                        };
                        if better {
                            best = Some((m.t_send_complete, false, mi));
                        }
                        break;
                    }
                }
            }
            match best {
                Some((c, is_recv, mi)) => {
                    let m = &self.msgs[mi];
                    if c < t {
                        segs.push(PathSegment {
                            track: TrackId(cur as u32),
                            kind: SegKind::State(iv.state),
                            t0: c,
                            t1: t,
                        });
                    }
                    if m.t_match < c {
                        let from = if is_recv { m.src_track } else { m.dst_track };
                        segs.push(PathSegment {
                            track: TrackId(cur as u32),
                            kind: SegKind::Transfer { from, msg: mi },
                            t0: m.t_match,
                            t1: c,
                        });
                    }
                    // Jump to the peer only if the peer's late post set the
                    // match time; otherwise this rank was the bottleneck
                    // and the walk continues locally.
                    if is_recv {
                        if m.t_send_post >= m.t_recv_post {
                            cur = m.src_track.0 as usize;
                        }
                    } else if m.t_recv_post >= m.t_send_post {
                        cur = m.dst_track.0 as usize;
                    }
                    t = m.t_match;
                }
                None => {
                    segs.push(PathSegment {
                        track: TrackId(cur as u32),
                        kind: SegKind::State(iv.state),
                        t0: iv.t0,
                        t1: t,
                    });
                    t = iv.t0;
                }
            }
        }
        segs.reverse();
        segs
    }

    /// Sum of critical-path time per host label, descending; an answer to
    /// "which machines set the makespan?".
    pub fn critical_path_by_host(&self, path: &[PathSegment]) -> Vec<(String, f64)> {
        let mut by: std::collections::BTreeMap<&str, f64> = std::collections::BTreeMap::new();
        for s in path {
            *by.entry(&self.tracks[s.track.0 as usize].host).or_default() += s.t1 - s.t0;
        }
        let mut v: Vec<(String, f64)> = by.into_iter().map(|(k, d)| (k.to_string(), d)).collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    // -----------------------------------------------------------------
    // Exporters
    // -----------------------------------------------------------------

    /// Render as Chrome Trace Event JSON (`chrome://tracing` /
    /// `ui.perfetto.dev`-loadable): one process per world, one thread per
    /// rank, a complete (`"X"`) event per state interval, timestamps in
    /// microseconds of virtual time. Byte-deterministic for equal
    /// timelines.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut push_ev = |out: &mut String, body: &str| {
            if !std::mem::take(&mut first) {
                out.push(',');
            }
            out.push_str("\n ");
            out.push_str(body);
        };
        for w in &self.worlds {
            push_ev(
                &mut out,
                &format!(
                    "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":{}}}}}",
                    w.tag.0,
                    json_str(&w.name)
                ),
            );
        }
        for t in &self.tracks {
            let label = format!("rank {} @ {}", t.rank, t.host);
            push_ev(
                &mut out,
                &format!(
                    "{{\"ph\":\"M\",\"pid\":{},\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
                    t.world.0,
                    t.rank,
                    json_str(&label)
                ),
            );
        }
        for t in &self.tracks {
            for iv in &t.intervals {
                let mut body = format!(
                    "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"cat\":\"state\",\"name\":\"{}\",\"ts\":",
                    t.world.0,
                    t.rank,
                    iv.detail.unwrap_or(iv.state.name())
                );
                push_us(&mut body, iv.t0);
                body.push_str(",\"dur\":");
                push_us(&mut body, iv.t1 - iv.t0);
                body.push('}');
                push_ev(&mut out, &body);
            }
        }
        // Per-hop internals nest inside their enclosing state slices on
        // the same thread (Perfetto nests contained "X" events). Absent
        // unless the recorder was created with internals, so traces from
        // plain recorders are byte-identical to what they always were.
        for t in &self.tracks {
            for h in &t.hops {
                let dir = match h.state {
                    RankState::SendBlocked => "send",
                    RankState::RecvBlocked => "recv",
                    s => s.name(),
                };
                let mut body = format!(
                    "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"cat\":\"hop\",\"name\":\"{}:{}\",\"ts\":",
                    t.world.0,
                    t.rank,
                    h.detail.unwrap_or("hop"),
                    dir
                );
                push_us(&mut body, h.t0);
                body.push_str(",\"dur\":");
                push_us(&mut body, h.t1 - h.t0);
                body.push('}');
                push_ev(&mut out, &body);
            }
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"worlds\":[");
        for (i, w) in self.worlds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"pid\":{},\"name\":{},\"ranks\":{}}}",
                w.tag.0,
                json_str(&w.name),
                w.n_ranks
            ));
        }
        out.push_str("]}}");
        out
    }

    /// Deterministic text summary: per-rank wait-state table per world,
    /// plus message-matching totals. Equal timelines render byte-
    /// identically, so benches and tests can diff two runs textually.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let stats = self.rank_stats();
        for w in &self.worlds {
            out.push_str(&format!("world {} ({} ranks)\n", w.name, w.n_ranks));
            out.push_str(&format!(
                "  {:>4} {:<12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>6}\n",
                "rank",
                "host",
                "compute",
                "send_wait",
                "recv_wait",
                "late_send",
                "collective",
                "c_recv",
                "c_late",
                "swapped",
                "idle",
                "util"
            ));
            for b in stats.iter().filter(|b| b.world == w.tag) {
                out.push_str(&format!(
                    "  {:>4} {:<12} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>5.1}%\n",
                    b.rank,
                    b.host,
                    b.compute,
                    b.send_wait,
                    b.recv_wait,
                    b.late_sender,
                    b.collective,
                    b.coll_recv_wait,
                    b.coll_late_sender,
                    b.swapped_out,
                    b.idle,
                    b.utilisation() * 100.0
                ));
            }
        }
        out.push_str(&format!(
            "messages: {} matched, {} unmatched sends, {} unmatched recvs\n",
            self.msgs.len(),
            self.unmatched_sends,
            self.unmatched_recvs
        ));
        out
    }
}

/// Per-track utilisation and wait-state breakdown (all durations in
/// virtual seconds).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RankBreakdown {
    /// The track.
    pub track: TrackId,
    /// Owning world.
    pub world: WorldTag,
    /// Rank (or physical slot).
    pub rank: usize,
    /// Host label.
    pub host: String,
    /// Charged computation.
    pub compute: f64,
    /// Blocked in point-to-point sends.
    pub send_wait: f64,
    /// Blocked in point-to-point receives.
    pub recv_wait: f64,
    /// Portion of `recv_wait` spent before the sender had even posted
    /// (Scalasca's *late sender*).
    pub late_sender: f64,
    /// Portion of `send_wait` spent before the receiver had posted
    /// (*late receiver*; rendezvous sends only).
    pub late_receiver: f64,
    /// Inside collective operations.
    pub collective: f64,
    /// Portion of `collective` blocked sending a tree leg (collective
    /// internals only; zero without [`Recorder::enabled_with_internals`]).
    pub coll_send_wait: f64,
    /// Portion of `collective` blocked receiving a tree leg (collective
    /// internals only).
    pub coll_recv_wait: f64,
    /// Portion of `coll_recv_wait` spent before the sending leg was even
    /// posted — the collective analogue of `late_sender`, pointing at the
    /// slow subtree instead of the whole opaque block.
    pub coll_late_sender: f64,
    /// Inactive in a swap world.
    pub swapped_out: f64,
    /// Migration downtime.
    pub migrating: f64,
    /// Lifecycle span not covered by any recorded interval.
    pub idle: f64,
    /// Process lifetime (`end - start`).
    pub span: f64,
}

impl Default for WorldTag {
    fn default() -> Self {
        WorldTag::NONE
    }
}

impl RankBreakdown {
    /// Fraction of the lifetime spent computing.
    pub fn utilisation(&self) -> f64 {
        if self.span > 0.0 {
            self.compute / self.span
        } else {
            0.0
        }
    }
}

/// P×P communication matrix of one world.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommMatrix {
    /// Rank count.
    pub n: usize,
    /// Message counts, row-major `[src * n + dst]`.
    pub count: Vec<u64>,
    /// Byte totals, row-major.
    pub bytes: Vec<f64>,
    /// Sum of end-to-end latencies (send post → recv complete), row-major.
    pub latency_sum: Vec<f64>,
}

impl CommMatrix {
    /// Messages from `src` to `dst`.
    pub fn count(&self, src: usize, dst: usize) -> u64 {
        self.count[src * self.n + dst]
    }

    /// Bytes from `src` to `dst`.
    pub fn bytes(&self, src: usize, dst: usize) -> f64 {
        self.bytes[src * self.n + dst]
    }

    /// Mean end-to-end latency from `src` to `dst` (0 if no messages).
    pub fn mean_latency(&self, src: usize, dst: usize) -> f64 {
        let i = src * self.n + dst;
        if self.count[i] == 0 {
            0.0
        } else {
            self.latency_sum[i] / self.count[i] as f64
        }
    }

    /// Deterministic text rendering (bytes above the diagonal direction,
    /// i.e. a full P×P grid of `count/bytes`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:>5}", "s\\d"));
        for d in 0..self.n {
            out.push_str(&format!(" {d:>14}"));
        }
        out.push('\n');
        for s in 0..self.n {
            out.push_str(&format!("{s:>5}"));
            for d in 0..self.n {
                let c = self.count(s, d);
                if c == 0 {
                    out.push_str(&format!(" {:>14}", "."));
                } else {
                    out.push_str(&format!(" {:>6}/{:<7.0}", c, self.bytes(s, d)));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// What one critical-path segment represents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SegKind {
    /// Time in a rank state on the segment's track.
    State(RankState),
    /// A message transfer the path waited on (`from` is the peer track).
    Transfer {
        /// Peer track the message came from (or went to).
        from: TrackId,
        /// Index into [`Timeline::msgs`].
        msg: usize,
    },
    /// An incarnation bridge (migration downtime).
    Bridge {
        /// Origin track of the previous incarnation.
        from: TrackId,
        /// Bridge label.
        label: &'static str,
    },
}

/// One contiguous segment of the critical path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathSegment {
    /// Track the segment is charged to.
    pub track: TrackId,
    /// Segment class.
    pub kind: SegKind,
    /// Segment start, virtual seconds.
    pub t0: f64,
    /// Segment end, virtual seconds.
    pub t1: f64,
}

impl PathSegment {
    /// Segment duration.
    pub fn dur(&self) -> f64 {
        self.t1 - self.t0
    }

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self.kind {
            SegKind::State(s) => s.name(),
            SegKind::Transfer { .. } => "Transfer",
            SegKind::Bridge { .. } => "Migrating",
        }
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Seconds → microseconds with shortest round-trip formatting (JSON has no
/// NaN/Infinity; a correct run never records them, but render `null`
/// rather than corrupt the document).
fn push_us(out: &mut String, seconds: f64) {
    let us = seconds * 1e6;
    if us.is_finite() {
        out.push_str(&format!("{us}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_rank_recorder() -> (Recorder, WorldTag) {
        let rec = Recorder::enabled();
        let w = rec.register_world("w", &["h0".to_string(), "h1".to_string()]);
        rec.bind_pid(0, w, 0);
        rec.bind_pid(1, w, 1);
        rec.track_start(0, 0.0);
        rec.track_start(1, 0.0);
        (rec, w)
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = Recorder::disabled();
        let w = rec.register_world("w", &["h".to_string()]);
        assert_eq!(w, WorldTag::NONE);
        rec.interval(w, 0, RankState::Compute, 0.0, 1.0);
        rec.send_msg(w, 0, 0, 0, 1, 8.0, 0.0, 0.0, true, MsgKind::Pt2pt);
        let tl = rec.timeline();
        assert!(tl.tracks.is_empty());
        assert!(tl.msgs.is_empty());
        assert_eq!(tl.makespan(), 0.0);
        assert!(tl.critical_path().is_empty());
    }

    #[test]
    fn message_matching_pairs_halves_fifo() {
        let (rec, w) = two_rank_recorder();
        // Two same-key messages posted in order; recvs complete in order.
        rec.send_msg(w, 0, 0, 1, 7, 100.0, 1.0, 1.0, true, MsgKind::Pt2pt);
        rec.send_msg(w, 0, 0, 1, 7, 200.0, 2.0, 2.0, true, MsgKind::Pt2pt);
        rec.recv_msg(w, 1, 0, 1, 7, 0.5, 1.5);
        rec.recv_msg(w, 1, 0, 1, 7, 1.5, 2.5);
        rec.track_end(0, 3.0);
        rec.track_end(1, 3.0);
        let tl = rec.timeline();
        assert_eq!(tl.msgs.len(), 2);
        assert_eq!(tl.unmatched_sends, 0);
        assert_eq!(tl.unmatched_recvs, 0);
        assert_eq!(tl.msgs[0].bytes, 100.0);
        assert_eq!(tl.msgs[1].bytes, 200.0);
        for m in &tl.msgs {
            assert!(m.t_send_post <= m.t_match && m.t_match <= m.t_recv_complete);
            assert!(m.t_recv_post <= m.t_recv_complete);
        }
        // Eager match time is the send post.
        assert_eq!(tl.msgs[0].t_match, 1.0);
    }

    #[test]
    fn rendezvous_match_is_max_of_posts() {
        let (rec, w) = two_rank_recorder();
        rec.send_msg(w, 0, 0, 1, 3, 1e6, 1.0, 4.0, false, MsgKind::Pt2pt);
        rec.recv_msg(w, 1, 0, 1, 3, 2.0, 4.0);
        let tl = rec.timeline();
        assert_eq!(tl.msgs[0].t_match, 2.0);
    }

    #[test]
    fn unmatched_halves_are_counted() {
        let (rec, w) = two_rank_recorder();
        rec.send_msg(w, 0, 0, 1, 9, 8.0, 1.0, 1.0, true, MsgKind::Pt2pt);
        rec.recv_msg(w, 1, 0, 1, 10, 0.0, 2.0); // different tag: no match
        let tl = rec.timeline();
        assert_eq!(tl.msgs.len(), 0);
        assert_eq!(tl.unmatched_sends, 1);
        assert_eq!(tl.unmatched_recvs, 1);
    }

    #[test]
    fn rank_stats_attribute_late_sender() {
        let (rec, w) = two_rank_recorder();
        // Rank 1 posts a recv at t=1, sender posts at t=4, delivery at t=5.
        rec.interval(w, 1, RankState::RecvBlocked, 1.0, 5.0);
        rec.send_msg(w, 0, 0, 1, 1, 50.0, 4.0, 4.0, true, MsgKind::Pt2pt);
        rec.recv_msg(w, 1, 0, 1, 1, 1.0, 5.0);
        rec.interval(w, 0, RankState::Compute, 0.0, 4.0);
        rec.track_end(0, 5.0);
        rec.track_end(1, 5.0);
        let tl = rec.timeline();
        let stats = tl.rank_stats();
        let r1 = &stats[1];
        assert_eq!(r1.recv_wait, 4.0);
        assert_eq!(r1.late_sender, 3.0, "waited 3 s before the send existed");
        let r0 = &stats[0];
        assert_eq!(r0.compute, 4.0);
        assert_eq!(r0.idle, 1.0);
        assert!((r0.utilisation() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn comm_matrix_aggregates_and_excludes_swap() {
        let (rec, w) = two_rank_recorder();
        rec.send_msg(w, 0, 0, 1, 1, 100.0, 1.0, 1.0, true, MsgKind::Pt2pt);
        rec.recv_msg(w, 1, 0, 1, 1, 0.0, 2.0);
        rec.send_msg(w, 0, 0, 1, 2, 300.0, 2.0, 2.0, true, MsgKind::Collective);
        rec.recv_msg(w, 1, 0, 1, 2, 2.0, 3.0);
        rec.send_msg(w, 0, 1, 1, 99, 1e6, 3.0, 4.0, false, MsgKind::Swap);
        rec.recv_msg(w, 1, 1, 1, 99, 3.0, 4.0);
        let tl = rec.timeline();
        let m = tl.comm_matrix(w);
        assert_eq!(m.count(0, 1), 2, "swap handoffs excluded");
        assert_eq!(m.bytes(0, 1), 400.0);
        assert_eq!(m.mean_latency(0, 1), 1.0);
        assert_eq!(m.count(1, 0), 0);
    }

    #[test]
    fn critical_path_sums_to_makespan_and_jumps_through_late_sender() {
        let (rec, w) = two_rank_recorder();
        // Rank 0: compute 0..4, eager send at 4.
        // Rank 1: compute 0..1, recv blocked 1..5 (late sender), compute 5..8.
        rec.interval(w, 0, RankState::Compute, 0.0, 4.0);
        rec.send_msg(w, 0, 0, 1, 1, 50.0, 4.0, 4.0, true, MsgKind::Pt2pt);
        rec.interval(w, 1, RankState::Compute, 0.0, 1.0);
        rec.interval(w, 1, RankState::RecvBlocked, 1.0, 5.0);
        rec.recv_msg(w, 1, 0, 1, 1, 1.0, 5.0);
        rec.interval(w, 1, RankState::Compute, 5.0, 8.0);
        rec.track_end(0, 4.0);
        rec.track_end(1, 8.0);
        let tl = rec.timeline();
        assert_eq!(tl.makespan(), 8.0);
        let path = tl.critical_path();
        let total: f64 = path.iter().map(|s| s.dur()).sum();
        assert_eq!(total, 8.0, "segments must sum exactly to the makespan");
        // Forward order: rank 0 compute, transfer, rank 1 compute.
        assert_eq!(path[0].track, TrackId(0));
        assert!(matches!(path[0].kind, SegKind::State(RankState::Compute)));
        assert!(path
            .iter()
            .any(|s| matches!(s.kind, SegKind::Transfer { from, .. } if from == TrackId(0))));
        let last = path.last().unwrap();
        assert_eq!(last.track, TrackId(1));
        assert_eq!(last.t1, 8.0);
        // The path never charges rank 1's recv wait (the sender was the
        // bottleneck), so no RecvBlocked segment longer than the transfer.
        let blocked: f64 = path
            .iter()
            .filter(|s| matches!(s.kind, SegKind::State(RankState::RecvBlocked)))
            .map(|s| s.dur())
            .sum();
        assert_eq!(blocked, 0.0);
    }

    #[test]
    fn critical_path_stays_local_when_receiver_is_late() {
        let (rec, w) = two_rank_recorder();
        // Rank 0 posts eagerly at 1; rank 1 computes until 6 then recvs
        // instantly. The path must stay on rank 1 (its compute is the
        // bottleneck), not jump to rank 0.
        rec.interval(w, 0, RankState::Compute, 0.0, 1.0);
        rec.send_msg(w, 0, 0, 1, 1, 10.0, 1.0, 1.0, true, MsgKind::Pt2pt);
        rec.interval(w, 1, RankState::Compute, 0.0, 6.0);
        rec.recv_msg(w, 1, 0, 1, 1, 6.0, 6.5);
        rec.interval(w, 1, RankState::RecvBlocked, 6.0, 6.5);
        rec.track_end(0, 1.0);
        rec.track_end(1, 6.5);
        let tl = rec.timeline();
        let path = tl.critical_path();
        let total: f64 = path.iter().map(|s| s.dur()).sum();
        assert_eq!(total, 6.5);
        assert!(
            path.iter().all(|s| s.track == TrackId(1) || s.dur() == 0.0),
            "path must stay on the bottleneck rank: {path:?}"
        );
    }

    #[test]
    fn bridge_crosses_incarnations() {
        let rec = Recorder::enabled();
        let w0 = rec.register_world("e0", &["h0".to_string()]);
        let w1 = rec.register_world("e1", &["h1".to_string()]);
        rec.bind_pid(0, w0, 0);
        rec.bind_pid(1, w1, 0);
        rec.track_start(0, 0.0);
        rec.interval(w0, 0, RankState::Compute, 0.0, 10.0);
        rec.track_end(0, 10.0);
        rec.bridge(w0, 0, 10.0, w1);
        rec.track_start(1, 25.0);
        rec.interval(w1, 0, RankState::Compute, 25.0, 40.0);
        rec.track_end(1, 40.0);
        let tl = rec.timeline();
        let path = tl.critical_path();
        let total: f64 = path.iter().map(|s| s.dur()).sum();
        assert_eq!(total, 40.0);
        let bridge: Vec<_> = path
            .iter()
            .filter(|s| matches!(s.kind, SegKind::Bridge { .. }))
            .collect();
        assert_eq!(bridge.len(), 1);
        assert_eq!(bridge[0].t0, 10.0);
        assert_eq!(bridge[0].t1, 25.0);
        assert_eq!(path[0].track, TrackId(0), "walk reaches incarnation 0");
    }

    #[test]
    fn chrome_trace_is_deterministic_and_covers_ranks() {
        let mk = || {
            let (rec, w) = two_rank_recorder();
            rec.interval(w, 0, RankState::Compute, 0.0, 1.5);
            rec.interval(w, 1, RankState::RecvBlocked, 0.0, 2.0);
            rec.track_end(0, 1.5);
            rec.track_end(1, 2.0);
            rec.timeline()
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a, b, "equal recordings build equal timelines");
        let ja = a.to_chrome_trace();
        assert_eq!(ja, b.to_chrome_trace(), "export must be byte-identical");
        assert!(ja.contains("\"traceEvents\""));
        assert!(ja.contains("thread_name"));
        assert!(ja.contains("\"ranks\":2"));
        assert!(ja.contains("\"name\":\"Compute\""));
        assert_eq!(a.summary(), b.summary());
    }

    #[test]
    fn hops_require_an_internals_handle() {
        let (rec, w) = two_rank_recorder();
        assert!(!rec.internals_enabled());
        rec.hop(w, 0, RankState::RecvBlocked, Some("bcast"), 0.0, 1.0);
        assert!(rec.timeline().tracks[0].hops.is_empty());

        let rec2 = Recorder::enabled_with_internals();
        assert!(rec2.internals_enabled());
        let w2 = rec2.register_world("w", &["h0".to_string()]);
        rec2.bind_pid(0, w2, 0);
        rec2.track_start(0, 0.0);
        rec2.hop(w2, 0, RankState::RecvBlocked, Some("bcast"), 0.0, 1.0);
        rec2.track_end(0, 1.0);
        let tl = rec2.timeline();
        assert_eq!(tl.tracks[0].hops.len(), 1);
        assert_eq!(tl.tracks[0].hops[0].detail, Some("bcast"));
        assert!(
            tl.tracks[0].intervals.is_empty(),
            "hops are nested spans, not state intervals"
        );
    }

    /// A collective with a late sending subtree: the honest walk jumps
    /// through the tree to the sender; the opaque walk charges the whole
    /// block to the waiting rank. Both tile `[0, makespan]` exactly.
    fn collective_fixture() -> Timeline {
        let rec = Recorder::enabled_with_internals();
        let w = rec.register_world("w", &["h0".to_string(), "h1".to_string()]);
        rec.bind_pid(0, w, 0);
        rec.bind_pid(1, w, 1);
        rec.track_start(0, 0.0);
        rec.track_start(1, 0.0);
        // Rank 0 (root): computes until 5, then an instant eager tree send.
        rec.interval(w, 0, RankState::Compute, 0.0, 5.0);
        rec.send_msg(w, 0, 0, 1, 99, 100.0, 5.0, 5.0, true, MsgKind::Collective);
        // Rank 1: computes until 1, blocked in the bcast 1..6, computes 6..8.
        rec.interval(w, 1, RankState::Compute, 0.0, 1.0);
        rec.interval_detail(w, 1, RankState::Collective, Some("bcast"), 1.0, 6.0);
        rec.hop(w, 1, RankState::RecvBlocked, Some("bcast"), 1.0, 6.0);
        rec.recv_msg(w, 1, 0, 1, 99, 1.0, 6.0);
        rec.interval(w, 1, RankState::Compute, 6.0, 8.0);
        rec.track_end(0, 5.0);
        rec.track_end(1, 8.0);
        rec.timeline()
    }

    #[test]
    fn honest_and_opaque_walks_attribute_differently_but_both_tile() {
        let tl = collective_fixture();
        let check_tiling = |path: &[PathSegment]| {
            assert_eq!(path[0].t0, 0.0);
            assert_eq!(path.last().unwrap().t1, 8.0);
            for p in path.windows(2) {
                assert_eq!(p[0].t1.to_bits(), p[1].t0.to_bits());
            }
            let total: f64 = path.iter().map(|s| s.dur()).sum();
            assert_eq!(total, 8.0);
        };
        let honest = tl.critical_path();
        let opaque = tl.critical_path_opaque();
        check_tiling(&honest);
        check_tiling(&opaque);
        // Honest: the root's compute set the bcast exit — h0 is on the path.
        let h_hosts = tl.critical_path_by_host(&honest);
        assert_eq!(h_hosts[0].0, "h0");
        assert_eq!(h_hosts[0].1, 5.0);
        // Opaque: the whole run is charged to the waiting rank's host.
        let o_hosts = tl.critical_path_by_host(&opaque);
        assert_eq!(o_hosts, vec![("h1".to_string(), 8.0)]);
        assert!(opaque
            .iter()
            .any(|s| matches!(s.kind, SegKind::State(RankState::Collective))));
    }

    #[test]
    fn rank_stats_split_collective_waits_from_hops() {
        let tl = collective_fixture();
        let stats = tl.rank_stats();
        let r1 = &stats[1];
        assert_eq!(r1.collective, 5.0);
        assert_eq!(r1.coll_recv_wait, 5.0);
        assert_eq!(
            r1.coll_late_sender, 4.0,
            "waited 4 s before the tree leg was even posted"
        );
        assert_eq!(r1.coll_send_wait, 0.0);
    }

    #[test]
    fn chrome_trace_includes_hop_slices() {
        let tl = collective_fixture();
        let json = tl.to_chrome_trace();
        assert!(json.contains("\"cat\":\"hop\""));
        assert!(json.contains("\"name\":\"bcast:recv\""));
        assert!(json.contains("process_name"));
        assert!(json.contains("thread_name"));
    }

    #[test]
    fn close_open_tracks_bounds_unfinished_processes() {
        let (rec, w) = two_rank_recorder();
        rec.interval(w, 0, RankState::Compute, 0.0, 2.0);
        rec.track_end(0, 2.0);
        // pid 1 never exits; a cutoff closes it.
        rec.close_open_tracks(7.0);
        let tl = rec.timeline();
        assert_eq!(tl.tracks[0].end, 2.0);
        assert_eq!(tl.tracks[1].end, 7.0);
        assert_eq!(tl.makespan(), 7.0);
        let _ = w;
    }
}
