//! # grads-obs — decision-loop observability
//!
//! A lightweight, always-on utilisation/decision observability layer for
//! the emulated GrADS stack, in the spirit of Lazarević & Sacks'
//! *"Measuring and Monitoring Grid Resource Utilisation"*: effective
//! scheduling decisions need a monitoring substrate that is cheap enough
//! to leave enabled and structured enough to answer *"why did this
//! reschedule happen, and how long did it take?"* in **virtual** time.
//!
//! Two facilities, both reached through a cheaply-clonable [`Obs`] handle:
//!
//! * a [`metrics`] registry — named counters, gauges and fixed-bucket
//!   histograms with a deterministic [`MetricsSnapshot`] and JSON export,
//!   so benches can diff two runs textually;
//! * [`span`]-style decision tracing — every contract evaluation,
//!   violation, rescheduling decision (migrate vs. swap vs. ignore) and
//!   actuation becomes a typed [`DecisionEvent`] carrying its virtual
//!   timestamp, from which [`decision_chains`] reconstructs the
//!   monitor → detect → decide → actuate latency breakdown end-to-end.
//!
//! ## Determinism contract
//!
//! Recording **must not perturb the simulation**: no sleeps, no virtual
//! time reads of its own (timestamps are supplied by the caller from
//! `ctx.now()`), no influence on event ordering. All aggregation keys are
//! `BTreeMap`-ordered and histograms bucket on *virtual* quantities, so
//! two identical runs produce bit-identical snapshots, and an
//! obs-enabled run is bit-identical (on `end_time` and trace) to a
//! disabled one — `tests/obs_determinism.rs` holds the stack to both.
//!
//! A disabled handle ([`Obs::disabled`], the default) holds no allocation
//! and every recording call is a single `Option` test; instrumented hot
//! paths stay effectively free when observability is off.

#![warn(missing_docs)]

pub mod metrics;
pub mod span;
pub mod timeline;

pub use metrics::{Histogram, MetricsSnapshot, Registry, HISTOGRAM_LE};
pub use span::{
    chain_table_header, chain_table_row, decision_chains, DecisionAction, DecisionChain,
    DecisionEvent, DecisionKind,
};
pub use timeline::{
    CommMatrix, MsgKind, MsgRecord, PathSegment, RankBreakdown, RankState, Recorder, SegKind,
    Timeline, TrackId, WorldTag,
};

use parking_lot::Mutex;
use std::sync::Arc;

#[derive(Default)]
struct ObsInner {
    metrics: Mutex<Registry>,
    events: Mutex<Vec<DecisionEvent>>,
}

/// Handle to one observability sink: a metrics registry plus a decision
/// event log. Cloning shares the sink (`Arc` inside); the default handle
/// is disabled and records nothing.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<ObsInner>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Obs {
    /// A recording handle with an empty registry and event log.
    pub fn enabled() -> Self {
        Obs {
            inner: Some(Arc::new(ObsInner::default())),
        }
    }

    /// A no-op handle: every recording call returns after one `Option`
    /// test. This is the `Default`.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// Whether this handle records anything. Callers building expensive
    /// event payloads should gate on this (or use [`Obs::event_with`]).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `delta` to the named counter.
    #[inline]
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(i) = &self.inner {
            i.metrics.lock().counter_add(name, delta);
        }
    }

    /// Set the named gauge to `v` (last write wins).
    #[inline]
    pub fn gauge_set(&self, name: &str, v: f64) {
        if let Some(i) = &self.inner {
            i.metrics.lock().gauge_set(name, v);
        }
    }

    /// Record one observation `v` into the named histogram. `v` must be a
    /// virtual-time quantity (a duration in virtual seconds, a dirty-set
    /// size, …) — never a wall-clock reading, which would break run
    /// reproducibility.
    #[inline]
    pub fn observe(&self, name: &str, v: f64) {
        if let Some(i) = &self.inner {
            i.metrics.lock().observe(name, v);
        }
    }

    /// Append a decision event stamped with virtual time `t`.
    #[inline]
    pub fn event(&self, t: f64, kind: DecisionKind) {
        if let Some(i) = &self.inner {
            i.events.lock().push(DecisionEvent { t, kind });
        }
    }

    /// Append a decision event, building the payload only when enabled —
    /// use this where constructing the [`DecisionKind`] allocates.
    #[inline]
    pub fn event_with(&self, t: f64, f: impl FnOnce() -> DecisionKind) {
        if let Some(i) = &self.inner {
            i.events.lock().push(DecisionEvent { t, kind: f() });
        }
    }

    /// Deterministic snapshot of the metrics registry (sorted by name).
    /// Disabled handles return an empty snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(i) => i.metrics.lock().snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Copy of the decision event log, in record order (which equals
    /// virtual-time order: the kernel serializes all recorders).
    pub fn events(&self) -> Vec<DecisionEvent> {
        match &self.inner {
            Some(i) => i.events.lock().clone(),
            None => Vec::new(),
        }
    }

    /// Reconstructed monitor → detect → decide → actuate chains from the
    /// event log. See [`decision_chains`].
    pub fn chains(&self) -> Vec<DecisionChain> {
        decision_chains(&self.events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let o = Obs::disabled();
        o.counter_add("c", 3);
        o.gauge_set("g", 1.0);
        o.observe("h", 0.5);
        o.event(1.0, DecisionKind::MonitorPoll { reports: 1 });
        assert!(!o.is_enabled());
        assert_eq!(o.snapshot(), MetricsSnapshot::default());
        assert!(o.events().is_empty());
        assert!(o.chains().is_empty());
    }

    #[test]
    fn clones_share_the_sink() {
        let a = Obs::enabled();
        let b = a.clone();
        a.counter_add("x", 1);
        b.counter_add("x", 2);
        assert_eq!(a.snapshot().counter("x"), Some(3));
        b.event(2.0, DecisionKind::MonitorPoll { reports: 0 });
        assert_eq!(a.events().len(), 1);
    }

    #[test]
    fn event_with_skips_payload_when_disabled() {
        let o = Obs::disabled();
        let mut built = false;
        o.event_with(0.0, || {
            built = true;
            DecisionKind::MonitorPoll { reports: 0 }
        });
        assert!(!built, "payload must not be built on a disabled handle");
    }

    #[test]
    fn snapshots_of_identical_recordings_are_equal() {
        let mk = || {
            let o = Obs::enabled();
            o.counter_add("a", 1);
            o.counter_add("b", 2);
            o.gauge_set("g", 0.25);
            for v in [0.001, 0.5, 7.0, 2000.0] {
                o.observe("lat", v);
            }
            o
        };
        let (x, y) = (mk(), mk());
        assert_eq!(x.snapshot(), y.snapshot());
        assert_eq!(x.snapshot().to_json(), y.snapshot().to_json());
    }
}
