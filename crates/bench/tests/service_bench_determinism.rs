//! Sweep-worker determinism for the grid-service bench: the JSON body
//! the `grid_service` bin assembles must be byte-identical whether the
//! sweep points run serially or fan out over worker threads, because
//! every metric is virtual-time-derived and `run_sweep` collects by
//! scenario index. This is the in-process pin behind the checked-in
//! `BENCH_service.json`'s rerun stability.

use grads_bench::sweep::{json_num, run_sweep};
use grads_core::prelude::*;

fn service_sweep(workers: usize) -> Vec<String> {
    let points: Vec<(u64, f64)> = vec![(1, 2.0), (2, 1.0), (3, 0.5)];
    run_sweep(&points, workers, |i, &(seed, ia)| {
        let cfg = ServiceConfig {
            workload: WorkloadConfig {
                seed,
                n_jobs: 200,
                n_tenants: 4,
                mean_interarrival_s: ia,
                ..WorkloadConfig::default()
            },
            hosts: 64,
            clusters: 4,
            cores_per_host: 2,
            sched: SchedTune::fast(),
            ..ServiceConfig::default()
        };
        let r = run_service_experiment(cfg);
        format!(
            "[{i}] admitted={} rejected={} slo={} wait={} p95={} price={} vol={} fair={} inflight={} hs={}",
            r.totals.admitted,
            r.totals.rejected,
            json_num(r.slo_miss_rate),
            json_num(r.mean_wait_s),
            json_num(r.p95_wait_s),
            json_num(r.price_mean),
            json_num(r.price_volatility),
            json_num(r.fairness),
            r.max_in_flight,
            json_num(r.totals.host_seconds),
        )
    })
}

#[test]
fn service_sweep_is_byte_identical_across_worker_counts() {
    let serial = service_sweep(1);
    let par = service_sweep(4);
    assert_eq!(serial.len(), par.len());
    for (i, (a, b)) in serial.iter().zip(&par).enumerate() {
        assert_eq!(
            a, b,
            "sweep point {i}: parallel output diverged from serial"
        );
    }
}
