//! Determinism gate for the parallel sweep runner: fanning independent
//! scenarios over worker threads must not change a single byte of what a
//! serial run produces — per-scenario JSON snapshots and report lines
//! alike — because results are collected by scenario index, never by
//! completion order, and each scenario's engine run is deterministic.

use grads_bench::sweep::run_sweep;
use grads_core::obs::Obs;
use grads_core::prelude::*;
use grads_core::sim::topology::macrogrid_qr;

/// One reduced-size fig3-shaped scenario per `poll_every` value; returns
/// its report line plus the full metrics snapshot as JSON.
fn poll_sweep(workers: usize) -> Vec<String> {
    let polls = [2usize, 4, 8];
    run_sweep(&polls, workers, |i, &pe| {
        let obs = Obs::enabled();
        let mut cfg = QrExperimentConfig::paper(20000);
        cfg.qr.n_real = 24;
        cfg.qr.block = 4;
        cfg.qr.poll_every = pe;
        cfg.load_at = 60.0;
        cfg.monitor_period = 10.0;
        cfg.t_max = 50_000.0;
        cfg.obs = obs.clone();
        let r = run_qr_experiment(macrogrid_qr(), cfg);
        format!(
            "[{i}] poll_every={pe} migrated={} incarnations={} total={:.6}\n{}",
            r.migrated,
            r.incarnations,
            r.total_time,
            obs.snapshot().to_json()
        )
    })
}

#[test]
fn parallel_sweep_is_byte_identical_to_serial() {
    let serial = poll_sweep(1);
    let par4 = poll_sweep(4);
    assert_eq!(serial.len(), par4.len());
    for (i, (a, b)) in serial.iter().zip(&par4).enumerate() {
        assert_eq!(a, b, "scenario {i}: parallel output diverged from serial");
    }
}

#[test]
fn oversubscribed_sweep_preserves_order_and_results() {
    // More workers than items, and a worker count that does not divide
    // the item count — index-ordered collection must still hold.
    let items: Vec<u64> = (0..7).collect();
    let serial = run_sweep(&items, 1, |i, &x| format!("{i}:{}", x * 3));
    let wide = run_sweep(&items, 16, |i, &x| format!("{i}:{}", x * 3));
    assert_eq!(serial, wide);
}
