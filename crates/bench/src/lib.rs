//! # grads-bench — evaluation harnesses
//!
//! One binary per paper artifact (see DESIGN.md's per-experiment index):
//!
//! * `fig3_qr_migration` — Figure 3: QR stop/restart bars with phase
//!   breakdown, decision correctness, and the worst-case-overhead wrong
//!   decision;
//! * `fig4_nbody_swap` — Figure 4: N-body progress under process swapping;
//! * `eman_workflow` — §3.3: EMAN on the heterogeneous grid;
//! * `heuristics_table` — min-min / max-min / sufferage vs baselines over
//!   randomized workloads;
//! * `ablation_weights`, `ablation_resched`, `ablation_swap` — design-
//!   choice ablations;
//! * `decision_latency` — the fig3 migration scenario with the `grads-obs`
//!   sink attached: monitor → detect → decide → actuate latency chains plus
//!   a deterministic JSON metrics snapshot for run-to-run diffing.
//!
//! `benches/microbench.rs` holds the Criterion microbenchmarks of the
//! substrate itself.

pub mod sweep;

/// Render one breakdown row of the Figure 3 table.
pub fn breakdown_row(label: &str, b: &grads_core::binder::Breakdown) -> String {
    format!(
        "{label:<22} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>9.1} {:>9.1}",
        b.resource_selection,
        b.perf_modeling,
        b.grid_overhead,
        b.app_start,
        b.checkpoint_write,
        b.checkpoint_read,
        b.app_duration,
        b.total()
    )
}

/// Header matching [`breakdown_row`].
pub fn breakdown_header() -> String {
    format!(
        "{:<22} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "run", "select", "model", "gridovh", "start", "ckpt-w", "ckpt-r", "app", "TOTAL"
    )
}
