//! Regenerate **Figure 3** (§4.1.2): QR stop/restart migration across
//! problem sizes.
//!
//! For each nominal matrix size N the harness runs the full GrADS cycle on
//! the MacroGrid QR testbed four ways: forced no-rescheduling (the paper's
//! left bars), forced rescheduling (right bars), the default rescheduler
//! with modeled overhead, and the default rescheduler with the paper's
//! experimentally-determined worst-case overhead assumption of 900 s
//! (which produced the wrong decision at N = 8000 in the paper).
//!
//! Usage: `cargo run --release -p grads-bench --bin fig3_qr_migration
//! [n_real]` — larger `n_real` raises numeric fidelity at the cost of
//! harness time.

use grads_bench::{breakdown_header, breakdown_row};
use grads_core::apps::{run_qr_experiment, QrExperimentConfig, QrExperimentResult};
use grads_core::reschedule::{OverheadPolicy, ReschedulerMode};
use grads_core::sim::topology::macrogrid_qr;

fn run(n: usize, n_real: usize, mode: ReschedulerMode, ovh: OverheadPolicy) -> QrExperimentResult {
    let mut cfg = QrExperimentConfig::paper(n);
    cfg.qr.n_real = n_real;
    cfg.mode = mode;
    cfg.overhead = ovh;
    run_qr_experiment(macrogrid_qr(), cfg)
}

fn main() {
    let n_real: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    println!("Figure 3 — QR stop/restart migration (MacroGrid: 4x933 dual UTK + 8x450 UIUC)");
    println!("load: 6 competing processes on utk-0 at t = 300 s; n_real = {n_real}\n");
    println!("{}", breakdown_header());

    let sizes = [6000usize, 8000, 10000, 11000, 12000, 14000, 16000];
    let mut summary = Vec::new();
    for &n in &sizes {
        let stay = run(
            n,
            n_real,
            ReschedulerMode::ForceStay,
            OverheadPolicy::Modeled,
        );
        let go = run(
            n,
            n_real,
            ReschedulerMode::ForceMigrate,
            OverheadPolicy::Modeled,
        );
        let dflt = run(n, n_real, ReschedulerMode::Default, OverheadPolicy::Modeled);
        let worst = run(
            n,
            n_real,
            ReschedulerMode::Default,
            OverheadPolicy::WorstCase(900.0),
        );
        println!(
            "{}",
            breakdown_row(&format!("N={n} no-resched"), &stay.breakdown)
        );
        println!(
            "{}",
            breakdown_row(&format!("N={n} resched"), &go.breakdown)
        );

        let best_is_migrate = go.total_time < stay.total_time * 0.98;
        let tie = (go.total_time - stay.total_time).abs() < 0.02 * stay.total_time;
        let judge = |migrated: bool| {
            if tie {
                "tie"
            } else if migrated == best_is_migrate {
                "RIGHT"
            } else {
                "WRONG"
            }
        };
        println!(
            "{:<22} default(modeled): {}, {}; default(worst-case 900s): {}, {}",
            format!("N={n} decisions"),
            if dflt.migrated { "migrate" } else { "stay" },
            judge(dflt.migrated),
            if worst.migrated { "migrate" } else { "stay" },
            judge(worst.migrated),
        );
        summary.push((
            n,
            stay.total_time,
            go.total_time,
            dflt.migrated,
            worst.migrated,
        ));
        println!();
    }

    println!("summary (execution time in s):");
    println!(
        "{:>7} {:>12} {:>12} {:>10} {:>16} {:>18}",
        "N", "no-resched", "resched", "winner", "default(modeled)", "default(worst-900)"
    );
    for (n, s, g, dm, dw) in summary {
        let winner = if (g - s).abs() < 0.02 * s {
            "tie"
        } else if g < s {
            "resched"
        } else {
            "stay"
        };
        println!(
            "{n:>7} {s:>12.1} {g:>12.1} {winner:>10} {:>16} {:>18}",
            if dm { "migrate" } else { "stay" },
            if dw { "migrate" } else { "stay" }
        );
    }
    println!("\npaper shape to check: checkpoint-read dominates migration cost; rescheduling");
    println!("pays only above a size crossover; the worst-case-overhead policy refuses to");
    println!("migrate in a band above the crossover where migration actually wins (the");
    println!("paper's wrong decision at N = 8000).");
}
