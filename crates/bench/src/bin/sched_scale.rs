//! **SCHED-SCALE**: scheduler decision-path throughput at grid scale.
//!
//! The §3/§4.1 decision path — enumerate per-cluster prefixes of the
//! fastest-available hosts, score each with the application model, keep
//! the argmin — is exercised A/B on synthetic grids from campus size
//! (64 hosts) to grid scale (4096 hosts):
//!
//! * `reference` — the seed path: `select_mpi_resources` with a
//!   whole-prefix closure model. Every sort comparison and every
//!   candidate re-runs the NWS forecast battery, and every candidate
//!   prefix re-scans its hosts.
//! * `fast` — the tuned path: one `ForecastSnapshot` per decision epoch,
//!   a zero-materialization `CandidateWalk`, and the incremental
//!   `TreeBcastPrefix` predictor scoring prefix k from k-1 in O(1).
//! * `parallel` — the fast path with clusters sharded across workers and
//!   a `(predicted, cluster, k)` total-order reduce.
//!
//! Every sweep point asserts the three paths pick the **bit-identical**
//! `ResourceChoice` (hosts, cluster, and `predicted.to_bits()`) before
//! any throughput number is printed; the full sweep additionally asserts
//! the fast path is >= 5x reference at 1024 hosts x 16 clusters.
//!
//! Usage:
//!   cargo run --release -p grads-bench --bin sched_scale          # full sweep
//!   cargo run --release -p grads-bench --bin sched_scale smoke    # CI smoke
//!
//! Writes the `sched_scale` (or `sched_scale_smoke`) section of
//! `BENCH_sched.json` at the repository root.

use grads_bench::sweep::{default_workers, json_num, json_obj, merge_bench_section_in};
use grads_core::nws::{ForecastSnapshot, NwsService};
use grads_core::perf::TreeBcastPrefix;
use grads_core::sched::{select_mpi_resources, select_mpi_resources_fast, ResourceChoice};
use grads_core::sim::prelude::*;
use std::time::Instant;

/// Compute volume and broadcast bytes of the synthetic application model
/// (the QR shape: big matrix factorization with a tree broadcast).
const FLOPS: f64 = 5.0e11;
const BCAST_BYTES: f64 = 1.0e7;
/// Per-path measurement budget, seconds. Slow points simply run once.
const BUDGET_S: f64 = 0.25;
/// CPU-availability history depth fed to the NWS forecast battery.
const HISTORY: usize = 10;

/// Deterministic pseudo-availability in `[0.25, 0.95)` for host `i`,
/// sample `j` — no RNG so every run (and every path) sees identical
/// forecasts.
fn availability(i: usize, j: usize) -> f64 {
    let h = (i.wrapping_mul(2654435761) ^ j.wrapping_mul(40503)) % 1000;
    0.25 + 0.7 * (h as f64) / 1000.0
}

/// Build `clusters` clusters of `hosts / clusters` hosts each, ring-linked
/// over the WAN, with per-cluster base speeds and per-host NWS CPU
/// histories so effective speeds are heterogeneous within every cluster.
fn build(hosts: usize, clusters: usize) -> (Grid, NwsService, Vec<HostId>) {
    assert!(hosts >= clusters, "at least one host per cluster");
    let per = hosts / clusters;
    let mut b = GridBuilder::new();
    let mut cl = Vec::new();
    for c in 0..clusters {
        let id = b.cluster(&format!("C{c}"));
        b.local_link(id, 1.0e9, 50e-6);
        let spec = HostSpec::with_speed(4.0e8 + 1.0e8 * (c % 7) as f64);
        b.add_hosts(id, per, &spec);
        cl.push(id);
    }
    for c in 0..clusters {
        let next = (c + 1) % clusters;
        if next != c {
            b.connect(cl[c], cl[next], 5.0e7, 5e-3);
        }
    }
    let grid = b.build().expect("valid grid");
    let all: Vec<HostId> = (0..grid.hosts().len() as u32).map(HostId).collect();
    let mut nws = NwsService::new();
    for (i, &h) in all.iter().enumerate() {
        for j in 0..HISTORY {
            nws.observe_cpu(h, availability(i, j));
        }
    }
    (grid, nws, all)
}

/// Run `f` repeatedly for [`BUDGET_S`] and return (selections/sec, last
/// choice). Always runs at least once, so slow points cost one trial.
fn rate<F: FnMut() -> Option<ResourceChoice>>(mut f: F) -> (f64, ResourceChoice) {
    let t0 = Instant::now();
    let mut n = 0usize;
    let last;
    loop {
        let choice = f();
        n += 1;
        if t0.elapsed().as_secs_f64() >= BUDGET_S {
            last = choice;
            break;
        }
    }
    (
        n as f64 / t0.elapsed().as_secs_f64(),
        last.expect("non-empty grid must yield a choice"),
    )
}

/// The two choices must be the same bits, not merely close.
fn assert_identical(tag: &str, a: &ResourceChoice, b: &ResourceChoice, what: &str) {
    assert_eq!(a.cluster, b.cluster, "{tag}: {what} picked another cluster");
    assert_eq!(a.hosts, b.hosts, "{tag}: {what} picked other hosts");
    assert_eq!(
        a.predicted.to_bits(),
        b.predicted.to_bits(),
        "{tag}: {what} predicted {} vs {}",
        b.predicted,
        a.predicted
    );
}

struct Point {
    hosts: usize,
    clusters: usize,
    ref_per_s: f64,
    fast_per_s: f64,
    par_per_s: f64,
}

fn run_point(hosts: usize, clusters: usize, workers: usize) -> Point {
    let (grid, nws, all) = build(hosts, clusters);
    let per = hosts / clusters;
    let tag = format!("h{hosts}_c{clusters}");

    let closure = |hs: &[HostId], grid: &Grid, nws: &NwsService| {
        TreeBcastPrefix::reference(hs, grid, nws, FLOPS, BCAST_BYTES)
    };
    let (ref_per_s, ref_choice) =
        rate(|| select_mpi_resources(&grid, &nws, &all, 1, per, &closure));

    let snap = ForecastSnapshot::capture(&grid, &nws);
    let make = || TreeBcastPrefix::new(&grid, &snap, FLOPS, BCAST_BYTES);
    let (fast_per_s, fast_choice) =
        rate(|| select_mpi_resources_fast(&grid, &snap, &all, 1, per, make, 1));
    let (par_per_s, par_choice) =
        rate(|| select_mpi_resources_fast(&grid, &snap, &all, 1, per, make, workers));

    assert_identical(&tag, &ref_choice, &fast_choice, "fast(1)");
    assert_identical(&tag, &ref_choice, &par_choice, &format!("fast({workers})"));

    Point {
        hosts,
        clusters,
        ref_per_s,
        fast_per_s,
        par_per_s,
    }
}

fn main() {
    let smoke = std::env::args().nth(1).as_deref() == Some("smoke")
        || std::env::var("GRADS_SCHED_SMOKE").is_ok();
    let workers = default_workers().max(2);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let sweep: Vec<(usize, usize)> = if smoke {
        vec![(64, 16), (1024, 16)]
    } else {
        let mut v = Vec::new();
        for &h in &[64usize, 256, 1024, 4096] {
            for &c in &[4usize, 16, 64] {
                if h >= c {
                    v.push((h, c));
                }
            }
        }
        v
    };

    println!(
        "SCHED-SCALE — decision-path selections/sec, reference vs fast vs \
         parallel({workers}) [{} sweep, {cores} cores]\n",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "{:>6} {:>9} {:>12} {:>12} {:>12} {:>9}",
        "hosts", "clusters", "ref/s", "fast/s", "par/s", "speedup"
    );

    let mut fields: Vec<(&str, String)> = vec![
        ("cores_detected", cores.to_string()),
        ("workers", workers.to_string()),
        (
            "mode",
            format!("\"{}\"", if smoke { "smoke" } else { "full" }),
        ),
        ("flops", json_num(FLOPS)),
        ("bcast_bytes", json_num(BCAST_BYTES)),
    ];
    let mut keyed: Vec<(String, String)> = Vec::new();
    let mut speedup_1024_16 = None;
    for &(h, c) in &sweep {
        let p = run_point(h, c, workers);
        let best_fast = p.fast_per_s.max(p.par_per_s);
        let speedup = best_fast / p.ref_per_s;
        println!(
            "{:>6} {:>9} {:>12.1} {:>12.1} {:>12.1} {:>8.1}x",
            p.hosts, p.clusters, p.ref_per_s, p.fast_per_s, p.par_per_s, speedup
        );
        let tag = format!("h{h}_c{c}");
        keyed.push((format!("{tag}_ref_sel_per_s"), json_num(p.ref_per_s)));
        keyed.push((format!("{tag}_fast_sel_per_s"), json_num(p.fast_per_s)));
        keyed.push((format!("{tag}_par_sel_per_s"), json_num(p.par_per_s)));
        keyed.push((format!("{tag}_speedup"), json_num(speedup)));
        if (h, c) == (1024, 16) {
            speedup_1024_16 = Some(speedup);
        }
    }

    let s1024 = speedup_1024_16.expect("sweep includes 1024x16");
    println!(
        "\nall points: fast and parallel picked the bit-identical ResourceChoice \
         as reference."
    );
    println!("speedup at 1024 hosts x 16 clusters: {s1024:.1}x");
    if smoke {
        assert!(
            s1024 >= 1.0,
            "smoke: fast path must not be slower than reference at 1024 hosts \
             (got {s1024:.2}x)"
        );
    } else {
        assert!(
            s1024 >= 5.0,
            "fast path must be >= 5x reference at 1024 hosts x 16 clusters \
             (got {s1024:.2}x)"
        );
    }

    for (k, v) in &keyed {
        fields.push((k.as_str(), v.clone()));
    }
    let section = if smoke {
        "sched_scale_smoke"
    } else {
        "sched_scale"
    };
    merge_bench_section_in("BENCH_sched.json", section, &json_obj(&fields));
    println!("wrote {section} section of BENCH_sched.json");
}
