//! **A-SWAP** (DESIGN.md): swap-policy comparison, after the policies
//! studied in Sievert & Casanova \[14\].
//!
//! Runs the Figure 4 scenario under each policy and threshold, reporting
//! completion time and the number of swaps actuated.
//!
//! Usage: `cargo run --release -p grads-bench --bin ablation_swap`

use grads_bench::sweep::{default_workers, run_sweep};
use grads_core::apps::{run_nbody_experiment, NbodyConfig, NbodyExperimentConfig};
use grads_core::reschedule::SwapPolicy;
use grads_core::sim::topology::microgrid_nbody;

fn main() {
    let grid = microgrid_nbody();
    let mut workers = grid.hosts_of("UTK");
    workers.extend(grid.hosts_of("UIUC"));
    let monitor = grid.hosts_of("UCSD")[0];
    let base = NbodyExperimentConfig {
        app: NbodyConfig {
            n_bodies: 96,
            iters: 300,
            flops_per_pair: 2e5,
            ..Default::default()
        },
        t_max: 4000.0,
        ..Default::default()
    };

    println!("A-SWAP — swap policies on the Figure 4 scenario\n");
    println!("{:<24} {:>14} {:>8}", "policy", "completion(s)", "swaps");
    let policies: [(&str, SwapPolicy); 7] = [
        ("never", SwapPolicy::Never),
        ("greedy(factor 1.2)", SwapPolicy::Greedy { factor: 1.2 }),
        ("greedy(factor 1.5)", SwapPolicy::Greedy { factor: 1.5 }),
        ("greedy(factor 2.0)", SwapPolicy::Greedy { factor: 2.0 }),
        ("greedy(factor 4.0)", SwapPolicy::Greedy { factor: 4.0 }),
        ("worst-first(2.0)", SwapPolicy::WorstFirst { factor: 2.0 }),
        ("pack-cluster(1.5)", SwapPolicy::PackCluster { factor: 1.5 }),
    ];
    // One independent experiment per policy — fan out over the sweep
    // runner; rows come back in policy order.
    let rows = run_sweep(&policies, default_workers(), |_, &(name, policy)| {
        let mut cfg = base.clone();
        cfg.policy = policy;
        let r = run_nbody_experiment(grid.clone(), &workers, monitor, cfg);
        format!("{name:<24} {:>14.1} {:>8}", r.end_time, r.swaps.len())
    });
    for row in rows {
        println!("{row}");
    }
    println!("\nshape to check: any reasonable threshold recovers most of the loss; an");
    println!("over-strict threshold (4.0) behaves like never-swap; the mechanism itself");
    println!("is cheap (one state transfer per swap).");
}
