//! **T-ECON**: Grid-economy resource allocation (the §5 future-work
//! capability, after G-commerce \[24\]) — commodities market vs auction on
//! grid-shaped supply/demand mixes.
//!
//! Usage: `cargo run --release -p grads-bench --bin economy_table`

use grads_core::sched::{
    auction_allocate, jain_fairness, price_volatility, CommodityMarket, Consumer, Producer,
};

fn scenario(name: &str, producers: Vec<Producer>, consumers: Vec<Consumer>) {
    let supply = CommodityMarket::supply(&producers);
    let mut market = CommodityMarket::default();
    let eq = market.clear(&producers, &consumers, 500, 0.01);
    let market_sold: f64 = eq.allocations.iter().sum();
    let tail = &eq.price_history[eq.price_history.len().saturating_sub(3)..];
    let auction = auction_allocate(&producers, &consumers);
    let auction_sold: f64 = auction.allocations.iter().sum();
    println!(
        "{name} (supply {supply:.0} slots, {} consumers):",
        consumers.len()
    );
    println!(
        "  commodities market: price {:>7.3}  utilization {:>5.1}%  fairness {:.3}  volatility {:.4}  ({} iters{})",
        eq.price,
        market_sold / supply * 100.0,
        jain_fairness(&eq.allocations),
        price_volatility(tail),
        eq.iterations,
        if eq.converged { "" } else { ", NOT converged" }
    );
    println!(
        "  auction:            avg price {:>3.3}  utilization {:>5.1}%  fairness {:.3}  volatility {:.4}",
        auction.slot_prices.iter().sum::<f64>() / auction.slot_prices.len().max(1) as f64,
        auction_sold / supply * 100.0,
        jain_fairness(&auction.allocations),
        price_volatility(&auction.slot_prices),
    );
    println!();
}

fn main() {
    println!("T-ECON — market formulations for Grid resource allocation\n");
    scenario(
        "balanced",
        vec![Producer { capacity: 50.0 }, Producer { capacity: 50.0 }],
        vec![
            Consumer {
                budget: 100.0,
                max_demand: 50.0,
            },
            Consumer {
                budget: 100.0,
                max_demand: 50.0,
            },
            Consumer {
                budget: 100.0,
                max_demand: 50.0,
            },
        ],
    );
    scenario(
        "over-subscribed (4x demand)",
        vec![Producer { capacity: 40.0 }],
        (0..8)
            .map(|i| Consumer {
                budget: 50.0 + 10.0 * i as f64,
                max_demand: 20.0,
            })
            .collect(),
    );
    scenario(
        "under-subscribed",
        vec![Producer { capacity: 500.0 }],
        vec![
            Consumer {
                budget: 10.0,
                max_demand: 30.0,
            },
            Consumer {
                budget: 10.0,
                max_demand: 20.0,
            },
        ],
    );
    println!("shape to check (per G-commerce): both formulations allocate scarce capacity");
    println!("to higher-budget consumers; the commodities market's equilibrium price is");
    println!("stable while sequential auction prices drift as budgets drain; under-");
    println!("subscribed markets floor out with everyone served.");
}
