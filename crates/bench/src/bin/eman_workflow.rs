//! Regenerate the **§3.3 EMAN demonstration** (T-EMAN in DESIGN.md): the
//! refinement workflow scheduled by the GrADS workflow scheduler onto a
//! heterogeneous IA-32/IA-64 grid, compared against baselines, and
//! validated by emulated execution.
//!
//! Usage: `cargo run --release -p grads-bench --bin eman_workflow`

use grads_core::apps::wf_exec::execute_workflow;
use grads_core::apps::{eman_grid, eman_workflow, EmanConfig};
use grads_core::nws::NwsService;
use grads_core::perf::ResourceInfo;
use grads_core::sched::{
    schedule_greedy_ecost, schedule_heft, schedule_random, schedule_round_robin, WorkflowScheduler,
};
use grads_core::sim::prelude::*;

fn main() {
    let grid = eman_grid();
    let nws = NwsService::new();
    let resources: Vec<ResourceInfo> = (0..grid.hosts().len() as u32)
        .map(|i| ResourceInfo::from_grid(&grid, &nws, HostId(i)))
        .collect();

    println!("§3.3 — EMAN refinement workflow on a heterogeneous grid");
    println!("grid: 6x2.4 GHz IA-32 + 4x3.0 GHz IA-64 + 8x0.8 GHz pool\n");
    println!(
        "{:<26} {:>12} {:>12} {:>12} {:>12}",
        "strategy", "5k", "20k", "50k", "100k particles"
    );

    let particle_counts = [5_000usize, 20_000, 50_000, 100_000];
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    let mut exec_checks = Vec::new();
    for &np in &particle_counts {
        let cfg = EmanConfig {
            n_particles: np,
            ..Default::default()
        };
        let (wf, _) = eman_workflow(&cfg);
        let (best, per) = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &resources);
        for (name, mk) in per {
            push(&mut rows, &format!("grads/{name}"), mk);
        }
        push(&mut rows, "grads (best of three)", best.makespan);
        push(
            &mut rows,
            "heft",
            schedule_heft(&wf, &grid, &nws, &resources).makespan,
        );
        push(
            &mut rows,
            "greedy-ecost",
            schedule_greedy_ecost(&wf, &grid, &nws, &resources).makespan,
        );
        push(
            &mut rows,
            "round-robin",
            schedule_round_robin(&wf, &grid, &nws, &resources).makespan,
        );
        let rnd: f64 = (0..5)
            .map(|s| schedule_random(&wf, &grid, &nws, &resources, s).makespan)
            .sum::<f64>()
            / 5.0;
        push(&mut rows, "random (avg of 5)", rnd);
        // Validate the winning schedule on the emulator (smaller sizes to
        // bound harness time).
        if np <= 20_000 {
            let exec = execute_workflow(&grid, &wf, &best, &resources);
            exec_checks.push((np, best.makespan, exec.makespan));
        }
    }
    for (name, vals) in &rows {
        print!("{name:<26}");
        for v in vals {
            print!(" {v:>12.1}");
        }
        println!();
    }

    println!("\npredicted vs emulated makespan (validation of §3.2 models):");
    for (np, pred, meas) in exec_checks {
        println!(
            "  {np:>7} particles: predicted {pred:>9.1} s, emulated {meas:>9.1} s (ratio {:.2})",
            meas / pred
        );
    }
    println!("\npaper shape to check: the three GrADS heuristics produce near-identical");
    println!("makespans here, all beating naive baselines; predictions track emulation.");
}

fn push(rows: &mut Vec<(String, Vec<f64>)>, name: &str, v: f64) {
    match rows.iter_mut().find(|(n, _)| n == name) {
        Some((_, vals)) => vals.push(v),
        None => rows.push((name.to_string(), vec![v])),
    }
}
