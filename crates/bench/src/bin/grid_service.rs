//! **GRID-SERVICE**: the multi-tenant service layer at grid scale.
//!
//! A seeded stream of QR / N-body / EMAN / workflow jobs (each with a
//! size, deadline, and budget) is served by the deadline-aware,
//! market-priced admission layer in front of the fast mapper
//! (`grads-service`). The sweep holds the grid fixed and raises the
//! arrival intensity from under-subscribed to heavily saturated, plus
//! one grid-scale point at 4096 hosts — producing throughput, queue
//! latency, and SLO-miss curves as the offered load crosses capacity.
//!
//! Every metric in the `grid_service` section is **virtual-time-derived**
//! (no wall clock), so that section is byte-identical across reruns,
//! across `SchedTune` decision paths, and at any `GRADS_SWEEP_WORKERS`
//! count — pinned by `tests/service_bench_determinism.rs` and the root
//! `service_determinism` suite.
//!
//! The **`service_hotpath`** axis is the one deliberate exception: it
//! A/Bs the incremental decision-epoch path (`SchedTune::epoch`) against
//! the per-job-rebuild reference at a mapping-heavy point, asserts
//! in-binary that the two runs are bit-identical (full `ServiceResult`
//! plus the obs snapshot filtered of the epoch-only `svc.epoch.*`
//! counters), and records **wall-clock** rounds/sec — the same
//! measured-speed precedent as `BENCH_sim.json`'s wall keys, so those
//! keys vary between machines while every identity key stays pinned.
//!
//! Usage:
//!   cargo run --release -p grads-bench --bin grid_service          # full sweep
//!   cargo run --release -p grads-bench --bin grid_service smoke    # CI smoke
//!
//! Writes the `grid_service` + `service_hotpath` (or `_smoke`) sections
//! of `BENCH_service.json` at the repository root.

use grads_bench::sweep::{default_workers, json_num, json_obj, merge_bench_section_in, run_sweep};
use grads_core::prelude::*;

/// One sweep point: a grid shape plus an arrival intensity.
struct Point {
    tag: &'static str,
    hosts: usize,
    clusters: usize,
    cores: u32,
    n_jobs: usize,
    mean_interarrival_s: f64,
}

const FULL: &[Point] = &[
    Point {
        tag: "h1024_light",
        hosts: 1024,
        clusters: 16,
        cores: 8,
        n_jobs: 2000,
        mean_interarrival_s: 0.8,
    },
    Point {
        tag: "h1024_moderate",
        hosts: 1024,
        clusters: 16,
        cores: 8,
        n_jobs: 4000,
        mean_interarrival_s: 0.3,
    },
    Point {
        tag: "h1024_saturated",
        hosts: 1024,
        clusters: 16,
        cores: 8,
        n_jobs: 8000,
        mean_interarrival_s: 0.1,
    },
    Point {
        tag: "h1024_overload",
        hosts: 1024,
        clusters: 16,
        cores: 8,
        n_jobs: 10000,
        mean_interarrival_s: 0.05,
    },
    Point {
        tag: "h4096_saturated",
        hosts: 4096,
        clusters: 32,
        cores: 2,
        n_jobs: 8000,
        mean_interarrival_s: 0.1,
    },
];

const SMOKE: &[Point] = &[
    Point {
        tag: "h128_light",
        hosts: 128,
        clusters: 8,
        cores: 2,
        n_jobs: 300,
        mean_interarrival_s: 2.0,
    },
    Point {
        tag: "h128_saturated",
        hosts: 128,
        clusters: 8,
        cores: 2,
        n_jobs: 900,
        mean_interarrival_s: 0.4,
    },
];

/// The hotpath A/B point: a deep *standing* queue over a large grid, so
/// per-round decision work (eligibility scans + per-job walks) dominates
/// and the epoch path's incremental state has something to win. The
/// standing queue is engineered, not incidental: `reserve_price` sits
/// above most drawn budget rates (`budget_rate` spans 0.6–2.2), so the
/// bulk of the stream maps successfully every round and then defers
/// over-budget, re-deciding until its deadline expires. `round_s` bounds
/// how many rounds each job is re-decided (deadline ÷ round period).
struct HotPoint {
    tag: &'static str,
    hosts: usize,
    clusters: usize,
    cores: u32,
    n_jobs: usize,
    mean_interarrival_s: f64,
    round_s: f64,
    reserve_price: f64,
    /// Full mode asserts the epoch speedup; smoke skips it (CI noise).
    min_speedup: Option<f64>,
}

const HOT_FULL: HotPoint = HotPoint {
    tag: "h4096_mapheavy",
    hosts: 4096,
    clusters: 32,
    cores: 2,
    n_jobs: 4000,
    mean_interarrival_s: 0.05,
    round_s: 30.0,
    reserve_price: 6.0,
    min_speedup: Some(3.0),
};

const HOT_SMOKE: HotPoint = HotPoint {
    tag: "h256_mapheavy",
    hosts: 256,
    clusters: 8,
    cores: 2,
    n_jobs: 400,
    mean_interarrival_s: 0.2,
    round_s: 30.0,
    reserve_price: 6.0,
    min_speedup: None,
};

/// One hotpath run: the mapping-heavy point on the chosen decision path,
/// returning the result, the obs snapshot with epoch-only `svc.epoch.*`
/// lines removed (the identity-comparable remainder), and the wall time.
fn run_hot(p: &HotPoint, epoch: bool) -> (ServiceResult, String, f64) {
    let cfg = ServiceConfig {
        workload: WorkloadConfig {
            n_jobs: p.n_jobs,
            n_tenants: 8,
            mean_interarrival_s: p.mean_interarrival_s,
            ..WorkloadConfig::default()
        },
        hosts: p.hosts,
        clusters: p.clusters,
        cores_per_host: p.cores,
        round_s: p.round_s,
        reserve_price: p.reserve_price,
        // Never truncate the queue walk: every queued job gets its
        // mapping decision each round, on both paths identically.
        max_admissions_per_round: usize::MAX,
        sched: SchedTune::fast().with_epoch(epoch),
        obs: Obs::enabled(),
        ..ServiceConfig::default()
    };
    let obs = cfg.obs.clone();
    let t0 = std::time::Instant::now();
    let r = run_service_experiment(cfg);
    let wall_s = t0.elapsed().as_secs_f64();
    let filtered: String = obs
        .snapshot()
        .to_json()
        .lines()
        .filter(|l| !l.contains("svc.epoch."))
        .collect::<Vec<_>>()
        .join("\n");
    (r, filtered, wall_s)
}

fn run_point(p: &Point) -> ServiceResult {
    let cfg = ServiceConfig {
        workload: WorkloadConfig {
            n_jobs: p.n_jobs,
            n_tenants: 8,
            mean_interarrival_s: p.mean_interarrival_s,
            ..WorkloadConfig::default()
        },
        hosts: p.hosts,
        clusters: p.clusters,
        cores_per_host: p.cores,
        sched: SchedTune::fast(),
        ..ServiceConfig::default()
    };
    run_service_experiment(cfg)
}

fn main() {
    let smoke = std::env::args().nth(1).as_deref() == Some("smoke")
        || std::env::var("GRADS_SERVICE_SMOKE").is_ok();
    let workers = default_workers();
    let points = if smoke { SMOKE } else { FULL };

    println!(
        "GRID-SERVICE — multi-tenant job-stream service [{} sweep, {workers} workers]\n",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "{:>16} {:>6} {:>6} {:>7} {:>7} {:>7} {:>9} {:>9} {:>8} {:>9} {:>8}",
        "point",
        "hosts",
        "jobs",
        "admit",
        "reject",
        "slo%",
        "jobs/h",
        "wait_s",
        "p95_s",
        "inflight",
        "price"
    );

    let results = run_sweep(points, workers, |_i, p| run_point(p));

    let mut fields: Vec<(&str, String)> = vec![
        (
            "mode",
            format!("\"{}\"", if smoke { "smoke" } else { "full" }),
        ),
        ("n_tenants", "8".into()),
        ("seed", format!("{}", WorkloadConfig::default().seed)),
    ];
    let mut keyed: Vec<(String, String)> = Vec::new();
    for (p, r) in points.iter().zip(&results) {
        let t = &r.totals;
        assert_eq!(
            t.admitted + t.rejected,
            t.submitted,
            "{}: every job is admitted or rejected",
            p.tag
        );
        assert_eq!(t.completed, t.admitted, "{}: the run drained", p.tag);
        println!(
            "{:>16} {:>6} {:>6} {:>7} {:>7} {:>6.1}% {:>9.0} {:>9.1} {:>8.1} {:>9} {:>8.2}",
            p.tag,
            p.hosts,
            t.submitted,
            t.admitted,
            t.rejected,
            r.slo_miss_rate * 100.0,
            r.throughput_per_hour,
            r.mean_wait_s,
            r.p95_wait_s,
            r.max_in_flight,
            r.price_mean,
        );
        for (k, v) in [
            ("submitted", json_num(t.submitted as f64)),
            ("admitted", json_num(t.admitted as f64)),
            ("rejected", json_num(t.rejected as f64)),
            ("completed", json_num(t.completed as f64)),
            ("slo_misses", json_num(t.slo_misses as f64)),
            ("slo_miss_rate", json_num(r.slo_miss_rate)),
            ("throughput_per_hour", json_num(r.throughput_per_hour)),
            ("mean_wait_s", json_num(r.mean_wait_s)),
            ("p95_wait_s", json_num(r.p95_wait_s)),
            ("mean_turnaround_s", json_num(r.mean_turnaround_s)),
            ("max_in_flight", json_num(r.max_in_flight as f64)),
            ("mean_in_flight", json_num(r.mean_in_flight)),
            ("high_water_rounds", json_num(r.high_water_rounds as f64)),
            ("peak_queue", json_num(r.peak_queue as f64)),
            ("host_seconds", json_num(t.host_seconds)),
            ("spend", json_num(t.spend)),
            ("price_mean", json_num(r.price_mean)),
            ("price_volatility", json_num(r.price_volatility)),
            ("fairness", json_num(r.fairness)),
            ("rounds", json_num(r.rounds as f64)),
            ("auction_rounds", json_num(r.auction_rounds as f64)),
            ("end_time_s", json_num(r.end_time)),
        ] {
            keyed.push((format!("{}_{k}", p.tag), v));
        }
    }

    if !smoke {
        let sat = &results[2];
        assert!(
            points[2].hosts >= 1024,
            "the saturated point runs on a grid-scale host count"
        );
        assert!(
            sat.max_in_flight >= 2000,
            "the saturated 1024-host point must sustain >= 2000 concurrent \
             jobs (got {})",
            sat.max_in_flight
        );
        assert!(
            sat.high_water_rounds >= 60,
            "concurrency must be sustained, not a transient: >= 2000 jobs \
             in flight for >= 60 rounds (got {} rounds)",
            sat.high_water_rounds
        );
        println!(
            "\nsaturated point: {} jobs peak in flight on {} hosts, >= 2000 \
             in flight for {} rounds ({:.0} virtual seconds)",
            sat.max_in_flight,
            points[2].hosts,
            sat.high_water_rounds,
            sat.high_water_rounds as f64 * 5.0,
        );
    }

    for (k, v) in &keyed {
        fields.push((k.as_str(), v.clone()));
    }
    let section = if smoke {
        "grid_service_smoke"
    } else {
        "grid_service"
    };
    merge_bench_section_in("BENCH_service.json", section, &json_obj(&fields));
    println!("wrote {section} section of BENCH_service.json");

    // ---- service_hotpath: epoch path vs reference decision path ----
    let hp = if smoke { &HOT_SMOKE } else { &HOT_FULL };
    println!(
        "\nSERVICE-HOTPATH — incremental epochs vs per-job rebuild @ {} \
         ({} hosts, {} jobs)",
        hp.tag, hp.hosts, hp.n_jobs
    );
    let (r_ref, obs_ref, wall_ref) = run_hot(hp, false);
    let (r_epoch, obs_epoch, wall_epoch) = run_hot(hp, true);
    assert_eq!(
        r_ref, r_epoch,
        "{}: the epoch path changed a decision or a ledger bit",
        hp.tag
    );
    let identity_ok = r_ref == r_epoch && obs_ref == obs_epoch;
    assert_eq!(
        obs_ref, obs_epoch,
        "{}: obs snapshots diverge beyond the epoch-only counters",
        hp.tag
    );
    let decisions_line = obs_ref
        .lines()
        .find(|l| l.contains("svc.round.decisions"))
        .unwrap_or("")
        .trim()
        .to_string();
    println!(
        "{:>16} admitted {} rejected {} — {}",
        hp.tag, r_ref.totals.admitted, r_ref.totals.rejected, decisions_line
    );
    let ref_rps = r_ref.rounds as f64 / wall_ref.max(1e-9);
    let epoch_rps = r_epoch.rounds as f64 / wall_epoch.max(1e-9);
    let speedup = wall_ref / wall_epoch.max(1e-9);
    println!(
        "{:>16} rounds {:>5}  reference {:>8.2} rounds/s  epoch {:>8.2} \
         rounds/s  speedup {:>5.2}x  identity ok",
        hp.tag, r_ref.rounds, ref_rps, epoch_rps, speedup
    );
    if let Some(min) = hp.min_speedup {
        assert!(
            speedup >= min,
            "{}: epoch path must be >= {min}x over the reference decision \
             path (got {speedup:.2}x)",
            hp.tag
        );
    }
    let hot_fields: Vec<(String, String)> = vec![
        (
            format!("{}_identity_ok", hp.tag),
            json_num(identity_ok as u64 as f64),
        ),
        (format!("{}_speedup_x", hp.tag), json_num(speedup)),
        (format!("{}_ref_rounds_per_sec", hp.tag), json_num(ref_rps)),
        (
            format!("{}_epoch_rounds_per_sec", hp.tag),
            json_num(epoch_rps),
        ),
        (format!("{}_rounds", hp.tag), json_num(r_ref.rounds as f64)),
        (format!("{}_ref_wall_s", hp.tag), json_num(wall_ref)),
        (format!("{}_epoch_wall_s", hp.tag), json_num(wall_epoch)),
    ];
    let hot_refs: Vec<(&str, String)> = hot_fields
        .iter()
        .map(|(k, v)| (k.as_str(), v.clone()))
        .collect();
    let hot_section = if smoke {
        "service_hotpath_smoke"
    } else {
        "service_hotpath"
    };
    merge_bench_section_in("BENCH_service.json", hot_section, &json_obj(&hot_refs));
    println!("wrote {hot_section} section of BENCH_service.json");
}
