//! **A-WEIGHTS** (DESIGN.md): ablation of the rank-function weights.
//!
//! §3.1: *"The weights w₁ and w₂ can be customized to vary the relative
//! importance of the two costs."* This harness sweeps the w₂/w₁ ratio on
//! the EMAN workflow and on a communication-heavy synthetic workflow to
//! show where data-movement awareness matters.
//!
//! Usage: `cargo run --release -p grads-bench --bin ablation_weights`

use grads_core::apps::{eman_grid, eman_workflow, EmanConfig};
use grads_core::nws::NwsService;
use grads_core::perf::{FittedModel, OpCountModel, RankWeights, ResourceInfo};
use grads_core::sched::{Workflow, WorkflowScheduler};
use grads_core::sim::prelude::*;
use std::sync::Arc;

fn resources(grid: &Grid) -> Vec<ResourceInfo> {
    let nws = NwsService::new();
    (0..grid.hosts().len() as u32)
        .map(|i| ResourceInfo::from_grid(grid, &nws, HostId(i)))
        .collect()
}

/// A locality-vs-speed tension instance: the producer is pinned (by
/// architecture) to a slow cluster; its consumers can stay local (slow
/// compute, no transfer) or move to a fast remote cluster (pay the data
/// cost). The completion-time semantics favour remote; over-weighting
/// dcost flips the choice and degrades the makespan — exposing the knob.
fn tension_instance() -> (Grid, Workflow) {
    let mut b = grads_core::sim::topology::GridBuilder::new();
    let slow = b.cluster("SLOW");
    b.local_link(slow, 1e8, 1e-4);
    b.add_hosts(
        slow,
        2,
        &HostSpec {
            speed: 5e8,
            arch: Arch::Other("edge".into()),
            ..Default::default()
        },
    );
    let fast = b.cluster("FAST");
    b.local_link(fast, 1e8, 1e-4);
    b.add_hosts(fast, 6, &HostSpec::with_speed(4e9));
    b.connect(slow, fast, 50e6, 0.005);
    let grid = b.build().expect("static topology");

    let mut wf = Workflow::new();
    let model = |flops: f64, outb: f64, pinned: bool| -> Arc<FittedModel> {
        Arc::new(FittedModel {
            problem_size: 1.0,
            ops: OpCountModel {
                coeffs: vec![flops],
                degree: 0,
                rms_rel_residual: 0.0,
            },
            mrd: None,
            input_bytes: 0.0,
            output_bytes: outb,
            min_memory: 0,
            allowed: pinned.then(|| vec![Arch::Other("edge".into())]),
        })
    };
    // Producer pinned at the edge (instrument-side preprocessing).
    let src = wf.add_component("acquire", model(1e9, 2e8, true));
    for i in 0..6 {
        let c = wf.add_component(&format!("analyze{i}"), model(2e10, 1e6, false));
        wf.add_edge(src, c, 2e8);
    }
    (grid, wf)
}

fn main() {
    let ratios = [0.0f64, 0.1, 0.5, 1.0, 2.0, 10.0, 100.0];

    println!("A-WEIGHTS — rank weight sweep (w2/w1 = data-cost emphasis)\n");
    let (tgrid, twf) = tension_instance();
    for (label, grid, wf) in [
        (
            "EMAN refinement",
            eman_grid(),
            eman_workflow(&EmanConfig::default()).0,
        ),
        ("pinned-producer tension", tgrid, twf),
    ] {
        let res = resources(&grid);
        let nws = NwsService::new();
        println!("{label}:");
        println!(
            "{:>10} {:>14} {:>10} {:>18}",
            "w2/w1", "makespan(s)", "strategy", "placement-delta"
        );
        let reference = WorkflowScheduler::default()
            .schedule(&wf, &grid, &nws, &res)
            .0
            .placement;
        for &r in &ratios {
            let sched = WorkflowScheduler {
                weights: RankWeights { w1: 1.0, w2: r },
                ..Default::default()
            };
            let (best, _) = sched.schedule(&wf, &grid, &nws, &res);
            let delta = best
                .placement
                .iter()
                .zip(&reference)
                .filter(|(a, b)| a != b)
                .count();
            println!(
                "{r:>10.1} {:>14.1} {:>10} {:>15}/{:<2}",
                best.makespan,
                best.strategy,
                delta,
                reference.len()
            );
        }
        println!();
    }
    println!("findings: (1) on compute-bound workflows like EMAN the completion-time");
    println!("mapping already internalizes data movement through arrival times, so the");
    println!("w2*dcost term is inert — the paper's weighted rank is robust by default;");
    println!("(2) where locality and speed genuinely conflict, over-weighting dcost");
    println!("(w2/w1 >= 10) drags consumers onto the slow producer cluster and inflates");
    println!("the makespan — the knob is real and should stay near 1.");
}
