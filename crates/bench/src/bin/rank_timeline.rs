//! Per-rank flight-recorder replay of the fig3 QR-migration scenario.
//!
//! Runs the §4.1.2 stop/restart experiment with the flight recorder
//! attached — collective internals included, so every binomial-tree hop
//! is recorded — and prints (1) the per-rank wait-state breakdown of
//! every incarnation (compute / send-wait / recv-wait / late-sender /
//! collective / idle, à la Scalasca), (2) the P×P communication matrix of
//! each world, (3) the critical path through the whole run — including
//! the migration bridge — attributed per host, split into the
//! before-migration and after-migration halves, and (4) the honest-vs-
//! opaque attribution diff: how the per-host table changes when the walk
//! is allowed to follow the collective's internal sends. Both paths are
//! verified to tile `[0, makespan]` exactly: consecutive segments share
//! endpoints bitwise and the durations sum to the virtual makespan.
//!
//! A Chrome Trace Event JSON (loadable in `chrome://tracing` or
//! `ui.perfetto.dev`) is written as a side artifact; CI uploads it and
//! smoke-checks that it parses and covers every rank.
//!
//! Usage: `cargo run --release -p grads-bench --bin rank_timeline
//! [n_nominal [n_real]] [--export PATH]` (defaults 20000 / 64,
//! `target/rank_timeline_trace.json`).

use grads_core::obs::{PathSegment, SegKind};
use grads_core::prelude::*;
use grads_core::sim::topology::macrogrid_qr;
use std::collections::BTreeMap;

fn main() {
    let mut n_nominal: usize = 20000;
    let mut n_real: usize = 64;
    let mut export = String::from("target/rank_timeline_trace.json");
    let mut pos = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--export" {
            export = args.next().expect("--export takes a path");
        } else if let Ok(v) = a.parse::<usize>() {
            match pos {
                0 => n_nominal = v,
                1 => n_real = v,
                _ => {}
            }
            pos += 1;
        } else {
            panic!("unrecognized argument {a:?}");
        }
    }

    let rec = Recorder::enabled_with_internals();
    let mut cfg = QrExperimentConfig::paper(n_nominal);
    cfg.qr.n_real = n_real;
    cfg.qr.block = 4;
    cfg.qr.poll_every = 4;
    cfg.load_at = 60.0;
    cfg.monitor_period = 10.0;
    cfg.t_max = 50_000.0;
    cfg.recorder = rec.clone();

    let r = run_qr_experiment(macrogrid_qr(), cfg);
    let tl = rec.timeline();

    println!(
        "rank_timeline — fig3 QR-migration flight recording (N = {n_nominal}, n_real = {n_real})"
    );
    println!(
        "outcome: migrated = {}, incarnations = {}, total_time = {:.1} s (virtual)",
        r.migrated, r.incarnations, r.total_time
    );
    let makespan = tl.makespan();
    println!("recorded makespan (last rank exit) = {makespan:.3} s\n");

    println!("per-rank wait-state breakdown:");
    println!("{}", tl.summary());

    for w in &tl.worlds {
        println!("communication matrix, world {} (count/bytes):", w.name);
        println!("{}", tl.comm_matrix(w.tag).render());
    }

    // -------- critical path --------
    let path = tl.critical_path();
    assert!(!path.is_empty(), "a completed run has a critical path");
    assert_eq!(path[0].t0, 0.0, "path starts at virtual time zero");
    assert_eq!(
        path.last().unwrap().t1,
        makespan,
        "path ends at the makespan"
    );
    for pair in path.windows(2) {
        assert_eq!(
            pair[0].t1.to_bits(),
            pair[1].t0.to_bits(),
            "consecutive segments share endpoints bitwise"
        );
    }
    let total: f64 = path.iter().map(|s| s.dur()).sum();
    assert!(
        (total - makespan).abs() <= 1e-9 * makespan.max(1.0),
        "segment durations sum to the makespan: {total} vs {makespan}"
    );

    println!(
        "critical path: {} segments tiling [0, {makespan:.3}] exactly (duration sum {total:.3})",
        path.len()
    );
    // The migration shows up as a Bridge segment; split the path there.
    let cut = path
        .iter()
        .position(|s| matches!(s.kind, SegKind::Bridge { .. }));
    let halves: Vec<(&str, &[PathSegment])> = match cut {
        Some(i) => vec![
            ("before migration", &path[..i]),
            ("migration bridge", &path[i..i + 1]),
            ("after migration", &path[i + 1..]),
        ],
        None => vec![("whole run (no migration on the path)", &path[..])],
    };
    for (label, segs) in halves {
        let span: f64 = segs.iter().map(|s| s.dur()).sum();
        println!("\n  {label}: {} segments, {span:.3} s", segs.len());
        let mut by_state: BTreeMap<&str, f64> = BTreeMap::new();
        for s in segs {
            *by_state.entry(s.name()).or_default() += s.dur();
        }
        for (name, d) in &by_state {
            println!("    {name:<12} {d:>10.3} s");
        }
        let hosts = tl.critical_path_by_host(segs);
        let host_line: Vec<String> = hosts.iter().map(|(h, d)| format!("{h} {d:.3} s")).collect();
        println!("    by host: {}", host_line.join(", "));
    }

    // -------- honest vs opaque attribution --------
    // The opaque walk treats collectives as black boxes (no collective
    // edges); the honest walk follows the recorded per-hop sends through
    // the tree. Same tiling invariant, different per-host story.
    let opaque = tl.critical_path_opaque();
    assert_eq!(opaque[0].t0, 0.0, "opaque path starts at zero");
    assert_eq!(
        opaque.last().unwrap().t1,
        makespan,
        "opaque path ends at the makespan"
    );
    for pair in opaque.windows(2) {
        assert_eq!(
            pair[0].t1.to_bits(),
            pair[1].t0.to_bits(),
            "opaque segments share endpoints bitwise"
        );
    }
    let honest_by: BTreeMap<String, f64> = tl.critical_path_by_host(&path).into_iter().collect();
    let opaque_by: BTreeMap<String, f64> = tl.critical_path_by_host(&opaque).into_iter().collect();
    println!("\nhonest vs opaque per-host attribution (full path):");
    let mut moved = 0.0f64;
    let hosts: std::collections::BTreeSet<&String> =
        honest_by.keys().chain(opaque_by.keys()).collect();
    for h in hosts {
        let a = honest_by.get(h).copied().unwrap_or(0.0);
        let b = opaque_by.get(h).copied().unwrap_or(0.0);
        moved += (a - b).abs();
        println!(
            "  {:<14} honest {a:>10.3} s  opaque {b:>10.3} s  delta {:>+10.3} s",
            h,
            a - b
        );
    }
    println!(
        "  walking through the tree re-assigns {:.3} s ({:.1}% of the makespan)",
        moved / 2.0,
        100.0 * (moved / 2.0) / makespan
    );

    // -------- Chrome trace artifact --------
    let json = tl.to_chrome_trace();
    if let Some(dir) = std::path::Path::new(&export).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create export directory");
        }
    }
    std::fs::write(&export, &json).expect("write chrome trace");
    println!(
        "\nchrome trace: {} bytes -> {export} (load in chrome://tracing or ui.perfetto.dev)",
        json.len()
    );
}
