//! **T-PSA** (DESIGN.md): parameter-sweep scheduling — the HCW 2000
//! setting (\[3\] in the paper) the GrADS heuristics came from, including
//! the cluster-level file-reuse-aware XSufferage.
//!
//! Sweeps the shared-file size (the knob that separates the strategies)
//! and reports predicted makespans plus one emulated validation point.
//!
//! Usage: `cargo run --release -p grads-bench --bin psa_table`

use grads_core::apps::psa::{execute_psa, generate, schedule_psa, PsaConfig, PsaStrategy};
use grads_core::nws::NwsService;
use grads_core::sim::prelude::*;
use grads_core::sim::topology::GridBuilder;

fn psa_grid() -> (Grid, Vec<HostId>, HostId) {
    let mut b = GridBuilder::new();
    let st = b.cluster("STORAGE");
    b.local_link(st, 1e8, 1e-4);
    let storage = b.add_host(st, &HostSpec::with_speed(1e9));
    let fast = b.cluster("FAST");
    b.local_link(fast, 1e8, 1e-4);
    let f = b.add_hosts(fast, 4, &HostSpec::with_speed(3e9));
    let slow = b.cluster("SLOW");
    b.local_link(slow, 1e8, 1e-4);
    let s = b.add_hosts(slow, 4, &HostSpec::with_speed(1.5e9));
    b.connect(st, fast, 1e7, 0.02);
    b.connect(st, slow, 1e7, 0.02);
    b.connect(fast, slow, 1e7, 0.01);
    let grid = b.build().expect("static topology");
    let mut hosts = f;
    hosts.extend(s);
    (grid, hosts, storage)
}

fn main() {
    let (grid, hosts, storage) = psa_grid();
    let nws = NwsService::new();
    println!("T-PSA — parameter-sweep scheduling (60 tasks, 6 shared files, 2 clusters)\n");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12}",
        "strategy", "small files", "200 MB", "1 GB", "4 GB"
    );
    let sizes = [1e6f64, 2e8, 1e9, 4e9];
    for strategy in PsaStrategy::all() {
        print!("{:<14}", strategy.name());
        for &fb in &sizes {
            let cfg = PsaConfig {
                file_bytes: fb,
                ..Default::default()
            };
            let wl = generate(&cfg);
            let sched = schedule_psa(&wl, &grid, &nws, &hosts, storage, strategy);
            print!(" {:>12.1}", sched.makespan);
        }
        println!();
    }

    // Emulated validation at the 1 GB point.
    println!("\nemulated validation (1 GB shared files):");
    let cfg = PsaConfig {
        file_bytes: 1e9,
        ..Default::default()
    };
    let wl = generate(&cfg);
    for strategy in [
        PsaStrategy::XSufferage,
        PsaStrategy::MinMin,
        PsaStrategy::RoundRobin,
    ] {
        let sched = schedule_psa(&wl, &grid, &nws, &hosts, storage, strategy);
        let measured = execute_psa(&grid, &wl, &sched, &hosts, storage);
        println!(
            "  {:<12} predicted {:>9.1} s, emulated {:>9.1} s (ratio {:.2})",
            strategy.name(),
            sched.makespan,
            measured,
            measured / sched.makespan
        );
    }
    println!("\nshape to check (per HCW 2000): with small files all informed heuristics");
    println!("tie; as shared files grow, file-reuse awareness matters. With the");
    println!("storage-contention-aware completion model every informed heuristic learns");
    println!("to avoid redundant staging, so predictions converge — the emulated runs");
    println!("(real contention) still separate the strategies and favour XSufferage.");
}
