//! Regenerate **Figure 4** (§4.2.2): emulated application progress during
//! the N-body process-swapping demonstration.
//!
//! The paper's axes: iteration number vs. time. Competing load lands on a
//! UTK node at t = 80 s; the swap rescheduler detects the slowdown and
//! moves the affected logical rank to the (idle) UIUC pool, restoring the
//! progress slope. A no-swap baseline run shows the counterfactual.
//!
//! Usage: `cargo run --release -p grads-bench --bin fig4_nbody_swap
//! [csv_path]` — the optional path receives the progress series as CSV
//! for external plotting.

use grads_core::apps::{run_nbody_experiment, NbodyConfig, NbodyExperimentConfig};
use grads_core::reschedule::SwapPolicy;
use grads_core::sim::topology::microgrid_nbody;

fn main() {
    let grid = microgrid_nbody();
    let mut workers = grid.hosts_of("UTK");
    workers.extend(grid.hosts_of("UIUC"));
    let monitor = grid.hosts_of("UCSD")[0];
    let base = NbodyExperimentConfig {
        app: NbodyConfig {
            n_bodies: 96,
            iters: 300,
            flops_per_pair: 2e5,
            ..Default::default()
        },
        t_max: 4000.0,
        ..Default::default()
    };
    println!("Figure 4 — N-body progress during the process-swapping demonstration");
    println!("MicroGrid: 3x550 MHz UTK (active) + 3x450 MHz UIUC (inactive) + UCSD monitor");
    println!(
        "load: {} competing processes on utk-0 at t = {} s\n",
        base.load_amount, base.load_at
    );

    // Pack-cluster policy: the paper's behaviour (all three processes
    // move to UIUC).
    let mut pack = base.clone();
    pack.policy = SwapPolicy::PackCluster { factor: 1.5 };
    let with_swap = run_nbody_experiment(grid.clone(), &workers, monitor, pack);
    let mut never = base.clone();
    never.policy = SwapPolicy::Never;
    let no_swap = run_nbody_experiment(grid, &workers, monitor, never);

    // Print both series on a common 10-s grid (iteration reached by t).
    let sample = |series: &[(f64, f64)], t: f64| -> f64 {
        series
            .iter()
            .take_while(|&&(ts, _)| ts <= t)
            .last()
            .map(|&(_, i)| i)
            .unwrap_or(0.0)
    };
    let t_end = with_swap.end_time.max(no_swap.end_time);
    println!("{:>8} {:>12} {:>12}", "time(s)", "swap", "no-swap");
    let mut t = 0.0;
    while t <= t_end + 10.0 {
        println!(
            "{t:>8.0} {:>12.0} {:>12.0}",
            sample(&with_swap.progress, t),
            sample(&no_swap.progress, t)
        );
        t += 20.0;
    }
    for &(ts, l) in &with_swap.swaps {
        println!("\nswap actuated: logical rank {l:.0} at t = {ts:.1} s");
    }
    if let Some(path) = std::env::args().nth(1) {
        let mut csv = String::from("time,iteration_swap,iteration_noswap\n");
        let mut t = 0.0;
        while t <= t_end + 10.0 {
            csv.push_str(&format!(
                "{t},{},{}\n",
                sample(&with_swap.progress, t),
                sample(&no_swap.progress, t)
            ));
            t += 10.0;
        }
        std::fs::write(&path, csv).expect("write CSV");
        println!("series written to {path}");
    }
    println!(
        "completion: with swapping {:.1} s, without {:.1} s ({:.0}% saved)",
        with_swap.end_time,
        no_swap.end_time,
        (1.0 - with_swap.end_time / no_swap.end_time) * 100.0
    );
    println!("\npaper shape to check: the slope drops when the load arrives (~t=80) and");
    println!("recovers shortly after the swap (~paper: by t=150); the no-swap run stays slow.");
}
