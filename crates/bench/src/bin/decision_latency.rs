//! Decision-loop latency breakdown for the fig3 QR-migration scenario.
//!
//! Replays the §4.1.2 stop/restart experiment with an observability sink
//! attached and prints (1) the monitor → detect → decide → actuate chains
//! reconstructed from the decision-event stream, with every stage
//! timestamped in virtual seconds, (2) the slowdown-onset → detection lag
//! (the load-arrival time is scenario knowledge the event stream cannot
//! carry), and (3) the full deterministic metrics snapshot as JSON, so two
//! runs can be diffed textually.
//!
//! A closing sweep varies the application's `poll_every` (elimination
//! steps per sensor report / stop check) and reports how detection lag
//! and end-to-end recovery respond — the conclusion lives in ROADMAP.md.
//!
//! Usage: `cargo run --release -p grads-bench --bin decision_latency
//! [n_nominal [n_real]]` (defaults 20000 / 64). See EXPERIMENTS.md for a
//! worked reading of the output.

use grads_bench::sweep::{default_workers, run_sweep};
use grads_core::obs::{chain_table_header, chain_table_row, DecisionAction, Obs};
use grads_core::prelude::*;
use grads_core::sim::topology::macrogrid_qr;

fn run_fig3(n_nominal: usize, n_real: usize, poll_every: usize) -> (Obs, QrExperimentResult) {
    let obs = Obs::enabled();
    let mut cfg = QrExperimentConfig::paper(n_nominal);
    cfg.qr.n_real = n_real;
    cfg.qr.block = 4;
    cfg.qr.poll_every = poll_every;
    cfg.load_at = 60.0;
    cfg.monitor_period = 10.0;
    cfg.t_max = 50_000.0;
    cfg.obs = obs.clone();
    let r = run_qr_experiment(macrogrid_qr(), cfg);
    (obs, r)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_nominal: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(20000);
    let n_real: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(64);
    let load_at = 60.0;

    let (obs, r) = run_fig3(n_nominal, n_real, 4);

    println!("decision_latency — fig3 QR-migration scenario (N = {n_nominal}, n_real = {n_real})");
    println!(
        "outcome: migrated = {}, incarnations = {}, total_time = {:.1} s (virtual)\n",
        r.migrated, r.incarnations, r.total_time
    );

    println!("decision chains (all times virtual seconds):");
    println!("{}", chain_table_header());
    let chains = obs.chains();
    for c in &chains {
        println!("{}", chain_table_row(c));
    }
    if chains.is_empty() {
        println!("(no violations detected)");
    }

    if let Some(c) = chains.iter().find(|c| c.action == DecisionAction::Migrate) {
        println!("\nmonitor→actuate latency breakdown (migrate chain):");
        println!(
            "  onset→poll    {:>8.1} s   (load at t = {:.0}; next monitor poll that saw it)",
            c.t_poll - load_at,
            load_at
        );
        println!(
            "  poll→violation{:>8.1} s   (ratio window crossing the tolerance limit)",
            c.detect_latency()
        );
        if let Some(d) = c.decide_latency() {
            println!(
                "  violation→decide{:>6.1} s   (rescheduler model evaluation)",
                d
            );
        }
        if let Some(a) = c.actuate_latency() {
            println!(
                "  actuate       {:>8.1} s   (stop, checkpoint, rebind, relaunch)",
                a
            );
        }
        if let Some(e2e) = c.t_actuation_end.map(|e| e - load_at) {
            println!("  onset→running {:>8.1} s   end-to-end", e2e);
        }
    }

    println!("\nmetrics snapshot (deterministic JSON — diff two runs with `diff`):");
    println!("{}", obs.snapshot().to_json());

    // -------- poll_every sweep: detection lag vs chunk granularity --------
    // Scenarios are independent engine runs, so they fan out over the
    // sweep runner; rows come back in scenario order, byte-identical to a
    // serial run (pinned by `tests/sweep_determinism.rs`).
    println!("\npoll_every sweep (steps per sensor report; all times virtual seconds):");
    println!(
        "{:<12} {:>12} {:>14} {:>14} {:>10} {:>14}",
        "poll_every", "onset→poll", "poll→violation", "onset→running", "migrated", "total_time"
    );
    let polls = [1usize, 2, 4, 8, 16];
    let rows = run_sweep(&polls, default_workers(), |_, &pe| {
        let (o, res) = run_fig3(n_nominal, n_real, pe);
        let chains = o.chains();
        match chains.iter().find(|c| c.action == DecisionAction::Migrate) {
            Some(c) => {
                let e2e = c
                    .t_actuation_end
                    .map(|e| format!("{:>14.1}", e - load_at))
                    .unwrap_or_else(|| format!("{:>14}", "-"));
                format!(
                    "{:<12} {:>12.1} {:>14.1} {} {:>10} {:>14.1}",
                    pe,
                    c.t_poll - load_at,
                    c.detect_latency(),
                    e2e,
                    res.migrated,
                    res.total_time
                )
            }
            None => format!(
                "{:<12} {:>12} {:>14} {:>14} {:>10} {:>14.1}",
                pe, "-", "-", "-", res.migrated, res.total_time
            ),
        }
    });
    for row in rows {
        println!("{row}");
    }
    println!("\n(conclusion recorded in ROADMAP.md — detection lag scales with the");
    println!(" sensor-report cadence, i.e. roughly linearly with poll_every; the");
    println!(" monitor's own poll period is negligible at these chunk sizes.)");
}
