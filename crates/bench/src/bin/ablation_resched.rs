//! **A-RESCHED** (DESIGN.md): migration-decision sensitivity, after the
//! parameters studied in Vadhiyar & Dongarra's companion paper \[21\] — the
//! magnitude of the competing load and the time it arrives.
//!
//! For a fixed problem size, sweeps (load amount × injection time) and
//! reports the default rescheduler's decision plus both forced branches,
//! so every decision can be judged against ground truth.
//!
//! Usage: `cargo run --release -p grads-bench --bin ablation_resched [N]`

use grads_bench::sweep::{default_workers, run_sweep};
use grads_core::apps::{run_qr_experiment, QrExperimentConfig};
use grads_core::reschedule::ReschedulerMode;
use grads_core::sim::topology::macrogrid_qr;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12_000);
    println!("A-RESCHED — decision sensitivity at N = {n} (load amount x injection time)\n");
    println!(
        "{:>6} {:>8} | {:>10} {:>10} {:>9} | {:>8} {:>7}",
        "load", "t_inj", "stay(s)", "migrate(s)", "winner", "default", "verdict"
    );

    // The 3×3 grid of (load, t_inj) cells — three full experiment runs
    // each — fans out over the sweep runner; rows print in grid order.
    let mut cells = Vec::new();
    for &amount in &[2.0f64, 6.0, 12.0] {
        for &t_inj in &[100.0f64, 300.0, 600.0] {
            cells.push((amount, t_inj));
        }
    }
    let rows = run_sweep(&cells, default_workers(), |_, &(amount, t_inj)| {
        let mk = |mode: ReschedulerMode| {
            let mut c = QrExperimentConfig::paper(n);
            c.load_amount = amount;
            c.load_at = t_inj;
            c.mode = mode;
            run_qr_experiment(macrogrid_qr(), c)
        };
        let stay = mk(ReschedulerMode::ForceStay);
        let go = mk(ReschedulerMode::ForceMigrate);
        let dflt = mk(ReschedulerMode::Default);
        let tie = (stay.total_time - go.total_time).abs() < 0.02 * stay.total_time;
        let winner = if tie {
            "tie"
        } else if go.total_time < stay.total_time {
            "migrate"
        } else {
            "stay"
        };
        let verdict = if tie {
            "tie"
        } else if dflt.migrated == (go.total_time < stay.total_time) {
            "RIGHT"
        } else {
            "WRONG"
        };
        format!(
            "{amount:>6.0} {t_inj:>8.0} | {:>10.1} {:>10.1} {:>9} | {:>8} {:>7}",
            stay.total_time,
            go.total_time,
            winner,
            if dflt.migrated { "migrate" } else { "stay" },
            verdict
        )
    });
    for row in rows {
        println!("{row}");
    }
    println!("\nshape to check (per [21]): heavier and earlier load favours migration;");
    println!("light or late load does not amortize the checkpoint-read cost, and the");
    println!("default rescheduler should track that boundary.");
}
