//! **KERNEL-SCALE**: DES-kernel throughput on a communication-heavy
//! workload — 64 processes (4 clusters x 16 hosts) doing eager all-to-all
//! exchanges over a WAN mesh, with a compute phase per round so both the
//! CPU-sharing and the max-min-fair paths are exercised.
//!
//! Compares the three rate-recomputation modes:
//!
//! * `Legacy` — the pre-change kernel: global re-solve over all links,
//!   unconditional re-stamping of every action and flow, route `Vec`s
//!   cloned on every recompute;
//! * `Full` — scope-everything on the new per-component solver;
//! * `Incremental` — dirty-set scoped recomputation (the default).
//!
//! The applied-event count is mode-invariant (stale pops are not counted),
//! so `events/sec = events_processed / wall` is an apples-to-apples
//! throughput number. The run asserts that all modes agree on the
//! simulation outcome before printing the table.
//!
//! Two further axes ride on the Incremental mode: a windowed-kernel worker
//! sweep, and an eager-vs-coalesced recompute-*timing* A/B (churn marks
//! dirty sets, one solve per virtual instant) — each asserted bit-identical
//! to the serial eager reference before its throughput is recorded.
//!
//! Usage: `cargo run --release -p grads-bench --bin kernel_scale [rounds]`

use grads_bench::sweep::{json_num, json_obj, merge_bench_section};
use grads_core::sim::prelude::*;
use std::time::Instant;

const CLUSTERS: usize = 4;
const HOSTS_PER_CLUSTER: usize = 16;
const NPROC: usize = CLUSTERS * HOSTS_PER_CLUSTER;

fn build_grid() -> (Grid, Vec<HostId>) {
    let mut b = GridBuilder::new();
    let mut cl = Vec::new();
    let mut hosts = Vec::new();
    for c in 0..CLUSTERS {
        let id = b.cluster(&format!("C{c}"));
        b.local_link(id, 1.0e9, 50e-6);
        let spec = HostSpec {
            speed: 1.0e9,
            cores: 2,
            ..Default::default()
        };
        hosts.extend(b.add_hosts(id, HOSTS_PER_CLUSTER, &spec));
        cl.push(id);
    }
    // Full WAN mesh with heterogeneous bandwidth/latency per pair.
    let mut k = 0u32;
    for i in 0..CLUSTERS {
        for j in (i + 1)..CLUSTERS {
            b.connect(
                cl[i],
                cl[j],
                5.0e7 + 1.0e7 * k as f64,
                5e-3 + 3e-3 * k as f64,
            );
            k += 1;
        }
    }
    (b.build().expect("valid grid"), hosts)
}

/// Substrate under test: the default fast path (direct handoff + indexed
/// queue), or a reverted substrate via `GRADS_KERNEL_TUNE` — `seed`
/// (channel pair + stale-mark heap), `stale` (queue only), `channel`
/// (transport only) — so before/after numbers for the substrate swap, and
/// one-axis isolation runs, all come from the same binary.
fn tune_from_env() -> EngineTune {
    match std::env::var("GRADS_KERNEL_TUNE").as_deref() {
        Ok("seed") => EngineTune {
            handoff: HandoffMode::Channel,
            queue: EventQueueMode::StaleMark,
            ..Default::default()
        },
        Ok("stale") => EngineTune {
            queue: EventQueueMode::StaleMark,
            ..Default::default()
        },
        Ok("channel") => EngineTune {
            handoff: HandoffMode::Channel,
            ..Default::default()
        },
        _ => EngineTune::default(),
    }
}

fn run_once(mode: RecomputeMode, rounds: usize) -> (RunReport, f64) {
    run_kernel(mode, rounds, KernelMode::Serial)
}

fn run_kernel(mode: RecomputeMode, rounds: usize, kernel: KernelMode) -> (RunReport, f64) {
    run_tuned(mode, rounds, kernel, RecomputeTiming::Eager, false, None)
}

/// `uniform` selects the payload schedule: `false` keeps the historical
/// skewed per-pair sizes (every transfer completes at its own instant —
/// the worker-sweep workload all checked-in numbers are taken on), `true`
/// gives every transfer the same size, the shape of a real synchronized
/// `MPI_Alltoall` round — flows sharing a bottleneck then finish in
/// bitwise-identical completion waves, the regime the coalesced flush
/// collapses to one solve per instant.
fn run_tuned(
    mode: RecomputeMode,
    rounds: usize,
    kernel: KernelMode,
    timing: RecomputeTiming,
    uniform: bool,
    obs: Option<grads_core::obs::Obs>,
) -> (RunReport, f64) {
    let (grid, hosts) = build_grid();
    let mut eng = Engine::new(grid);
    eng.set_recompute_mode(mode);
    eng.apply_tune(EngineTune {
        kernel,
        recompute: timing,
        ..tune_from_env()
    });
    if let Some(o) = obs {
        eng.set_obs(o);
    }
    for i in 0..NPROC {
        let me = hosts[i];
        let peers = hosts.clone();
        eng.spawn(&format!("p{i}"), me, move |ctx| {
            for r in 0..rounds {
                ctx.compute(1.0e6);
                for (j, &peer) in peers.iter().enumerate() {
                    if j != i {
                        let bytes = if uniform {
                            1.0e5
                        } else {
                            1.0e5 + (i * NPROC + j) as f64
                        };
                        ctx.isend(
                            mail_key(&[r as u64, i as u64, j as u64]),
                            peer,
                            bytes,
                            Box::new(()),
                        );
                    }
                }
                // Interleave compute with the receives so CPU completions
                // land while transfers are in flight — the iterative
                // compute/communicate pattern of the paper's applications.
                for j in 0..NPROC {
                    if j != i {
                        let _ = ctx.recv(mail_key(&[r as u64, j as u64, i as u64]));
                        ctx.compute(2.5e5);
                    }
                }
            }
        });
    }
    let wall = Instant::now();
    let report = eng.run();
    let secs = wall.elapsed().as_secs_f64();
    assert_eq!(
        report.completed.len(),
        NPROC,
        "{mode:?}: all processes must complete"
    );
    (report, secs)
}

fn main() {
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    println!(
        "KERNEL-SCALE — {NPROC}-process all-to-all over a {CLUSTERS}-cluster WAN mesh, \
         {rounds} round(s)\n"
    );

    let modes = [
        RecomputeMode::Legacy,
        RecomputeMode::Full,
        RecomputeMode::Incremental,
    ];
    // Warm-up run (allocator, thread spawning) before timing; keep the
    // faster of two timed runs per mode to damp scheduler noise.
    let _ = run_once(RecomputeMode::Incremental, 1);

    let mut rows = Vec::new();
    for &mode in &modes {
        let (r1, t1) = run_once(mode, rounds);
        let (r2, t2) = run_once(mode, rounds);
        assert_eq!(
            r1.events_processed, r2.events_processed,
            "{mode:?}: applied-event count must be deterministic"
        );
        rows.push((mode, r1, t1.min(t2)));
    }

    // All modes must simulate the same execution.
    let (ref_end, ref_ev) = (rows[0].1.end_time, rows[0].1.events_processed);
    for (mode, r, _) in &rows {
        assert_eq!(
            r.events_processed, ref_ev,
            "{mode:?}: applied events diverge from legacy"
        );
        assert!(
            (r.end_time - ref_end).abs() <= 1e-6 * ref_end,
            "{mode:?}: end_time {} vs legacy {}",
            r.end_time,
            ref_end
        );
    }

    let legacy_rate = rows[0].1.events_processed as f64 / rows[0].2;
    println!(
        "{:>12} {:>12} {:>10} {:>14} {:>10}",
        "mode", "events", "wall(s)", "events/sec", "speedup"
    );
    for (mode, r, secs) in &rows {
        let rate = r.events_processed as f64 / secs;
        println!(
            "{:>12} {:>12} {:>10.3} {:>14.0} {:>9.2}x",
            format!("{mode:?}"),
            r.events_processed,
            secs,
            rate,
            rate / legacy_rate
        );
    }
    println!(
        "\nvirtual end_time {:.3} s; all modes applied the same {} events.",
        ref_end, ref_ev
    );
    println!("shape to check: Incremental >= 2x Legacy events/sec — the dirty-set path");
    println!("skips the global re-stamp, re-solves only affected sharing components,");
    println!("and never clones route vectors.");

    // ---- Windowed-kernel worker sweep -----------------------------------
    //
    // Same workload under the conservative parallel kernel at each worker
    // count (GRADS_KERNEL_WORKERS, default "1,2,4,8"). Each windowed run is
    // asserted bit-identical to the serial Incremental reference before its
    // throughput is recorded — the sweep measures speed, never divergence.
    let workers_axis: Vec<u32> = std::env::var("GRADS_KERNEL_WORKERS")
        .ok()
        .map(|s| s.split(',').filter_map(|w| w.trim().parse().ok()).collect())
        .filter(|v: &Vec<u32>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8]);
    let serial_ref = &rows[2].1; // Incremental, serial kernel
    let serial_rate = serial_ref.events_processed as f64 / rows[2].2;
    println!("\nwindowed kernel (Incremental recompute), worker sweep:");
    println!(
        "{:>12} {:>12} {:>10} {:>14} {:>12}",
        "workers", "events", "wall(s)", "events/sec", "vs serial"
    );
    let mut worker_rows = Vec::new();
    for &w in &workers_axis {
        let (r1, t1) = run_kernel(
            RecomputeMode::Incremental,
            rounds,
            KernelMode::Windowed { workers: w },
        );
        let (r2, t2) = run_kernel(
            RecomputeMode::Incremental,
            rounds,
            KernelMode::Windowed { workers: w },
        );
        assert_eq!(
            serial_ref, &r1,
            "windowed({w}) must be bit-identical to the serial kernel"
        );
        assert_eq!(&r1, &r2, "windowed({w}) must be run-to-run deterministic");
        let secs = t1.min(t2);
        let rate = r1.events_processed as f64 / secs;
        println!(
            "{:>12} {:>12} {:>10.3} {:>14.0} {:>11.2}x",
            w,
            r1.events_processed,
            secs,
            rate,
            rate / serial_rate
        );
        worker_rows.push((w, rate));
    }
    println!("every windowed run verified bit-identical to the serial kernel.");

    // ---- Coalesced-recompute A/B ----------------------------------------
    //
    // Uniform-payload all-to-all (a synchronized `MPI_Alltoall` round),
    // Incremental scope, eager vs coalesced *timing*: churn events only
    // mark dirty sets and the rate solve runs once per virtual instant, so
    // each round's 4032-flow send burst costs one solve instead of 4032,
    // and each bitwise-synchronized completion wave costs one solve
    // instead of one per flow. The uniform point is the headline number
    // because it is the regime the optimization targets; the skewed
    // workload (every completion at its own instant) is measured below it
    // as the honest floor — there, every eager-only activation solve pairs
    // 1:1 with a completion solve both timings must pay, which caps the
    // ratio strictly below 2x no matter how cheap the solves get.
    // Bit-identity of the full run report is asserted before any
    // throughput is recorded (`identity_ok` in the snapshot is earned, not
    // aspirational), and a separate obs-enabled run reports how much churn
    // the deferral absorbed.
    let coal = |timing: RecomputeTiming, uniform: bool, obs| {
        run_tuned(
            RecomputeMode::Incremental,
            rounds,
            KernelMode::Serial,
            timing,
            uniform,
            obs,
        )
    };
    let (e1, et1) = coal(RecomputeTiming::Eager, true, None);
    let (e2, et2) = coal(RecomputeTiming::Eager, true, None);
    assert_eq!(&e1, &e2, "eager run must be run-to-run deterministic");
    let (c1, ct1) = coal(RecomputeTiming::Coalesced, true, None);
    let (c2, ct2) = coal(RecomputeTiming::Coalesced, true, None);
    assert_eq!(
        &e1, &c1,
        "coalesced recompute must be bit-identical to the eager reference"
    );
    assert_eq!(&c1, &c2, "coalesced run must be run-to-run deterministic");
    let eager_secs = et1.min(et2);
    let eager_rate = e1.events_processed as f64 / eager_secs;
    let coalesced_secs = ct1.min(ct2);
    let coalesced_rate = c1.events_processed as f64 / coalesced_secs;
    let coalesce_speedup = coalesced_rate / eager_rate;
    println!("\ncoalesced recompute timing (Incremental scope, serial kernel, uniform payloads):");
    println!(
        "{:>12} {:>12} {:>10} {:>14} {:>10}",
        "timing", "events", "wall(s)", "events/sec", "speedup"
    );
    println!(
        "{:>12} {:>12} {:>10.3} {:>14.0} {:>9.2}x",
        "eager", e1.events_processed, eager_secs, eager_rate, 1.0
    );
    println!(
        "{:>12} {:>12} {:>10.3} {:>14.0} {:>9.2}x",
        "coalesced", c1.events_processed, coalesced_secs, coalesced_rate, coalesce_speedup
    );
    // The skewed-payload floor: same A/B on the worker-sweep workload,
    // where no two transfers finish at the same instant.
    let (sc1, sct1) = coal(RecomputeTiming::Coalesced, false, None);
    let (sc2, sct2) = coal(RecomputeTiming::Coalesced, false, None);
    assert_eq!(
        serial_ref, &sc1,
        "skewed coalesced run must be bit-identical to the eager reference"
    );
    assert_eq!(&sc1, &sc2, "skewed coalesced run must be deterministic");
    let skewed_rate = sc1.events_processed as f64 / sct1.min(sct2);
    let skewed_speedup = skewed_rate / serial_rate;
    println!(
        "{:>12} {:>12} {:>10.3} {:>14.0} {:>9.2}x   (skewed payloads: completion-paired floor)",
        "coalesced",
        sc1.events_processed,
        sct1.min(sct2),
        skewed_rate,
        skewed_speedup
    );
    // Counter run (obs adds overhead, so it is never timed): how many
    // churn notifications arrived, how many solves actually ran, and the
    // same-instant burst-size distribution the deferral collapses.
    let obs = grads_core::obs::Obs::enabled();
    let (co, _) = coal(RecomputeTiming::Coalesced, true, Some(obs.clone()));
    assert_eq!(&e1, &co, "obs-enabled run must not perturb results");
    let snap = obs.snapshot();
    let churn = snap.counter("sim.recomputes").unwrap_or(0);
    let solves = snap.counter("sim.recompute.solves").unwrap_or(0);
    let absorbed = snap.counter("sim.recompute.coalesced").unwrap_or(0);
    let (burst_mean, burst_max) = snap
        .histogram("sim.recompute.burst")
        .map(|h| (h.mean(), h.max))
        .unwrap_or((0.0, 0.0));
    assert_eq!(
        solves + absorbed,
        churn,
        "every churn is either solved or absorbed"
    );
    println!(
        "churn events {churn}, solves {solves}, absorbed {absorbed} \
         (burst mean {burst_mean:.1}, max {burst_max:.0})"
    );
    // The ≥2x floor is the ISSUE-10 acceptance bar for the real benchmark
    // configuration; the 1-round CI smoke run only checks identity and
    // snapshot shape, so wall-clock noise on shared runners cannot flake
    // the gate.
    if rounds >= 2 {
        assert!(
            coalesce_speedup >= 2.0,
            "coalesced timing must be >= 2x eager events/s, got {coalesce_speedup:.2}x"
        );
    }

    // Stamp the machine and the substrate under test so checked-in
    // snapshots are self-describing (throughput numbers are meaningless
    // without the core count and the engine tuning they were taken on).
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let substrate = match std::env::var("GRADS_KERNEL_TUNE").as_deref() {
        Ok("seed") => "channel_handoff+stale_mark_queue",
        Ok("stale") => "direct_handoff+stale_mark_queue",
        Ok("channel") => "channel_handoff+indexed_queue",
        _ => "direct_handoff+indexed_queue",
    };
    let mut fields: Vec<(&str, String)> = vec![
        ("cores_detected", cores.to_string()),
        ("substrate", format!("\"{substrate}\"")),
        ("rounds", rounds.to_string()),
        ("processes", NPROC.to_string()),
        ("events_applied", ref_ev.to_string()),
        ("virtual_end_time_s", json_num(ref_end)),
    ];
    for (mode, r, secs) in &rows {
        let key: &str = match mode {
            RecomputeMode::Legacy => "legacy_events_per_s",
            RecomputeMode::Full => "full_events_per_s",
            RecomputeMode::Incremental => "incremental_events_per_s",
        };
        fields.push((key, json_num(r.events_processed as f64 / secs)));
    }
    // Tuned (non-default) substrates write their own section so an A/B
    // run never clobbers the default-substrate snapshot.
    let section = match std::env::var("GRADS_KERNEL_TUNE").as_deref() {
        Ok("seed") => "kernel_scale_seed_substrate",
        Ok("stale") => "kernel_scale_stale_queue",
        Ok("channel") => "kernel_scale_channel_handoff",
        _ => "kernel_scale",
    };
    merge_bench_section(section, &json_obj(&fields));
    println!("\nwrote {section} section of BENCH_sim.json");

    // The worker sweep gets its own section: it only makes sense against
    // the default substrate, and its numbers are core-count-bound (on a
    // single-core box the pool gates off and every count measures the
    // window/merge overhead, not parallel speedup — cores_detected says
    // which regime a snapshot was taken in).
    if std::env::var("GRADS_KERNEL_TUNE").is_err() {
        let mut wfields: Vec<(&str, String)> = vec![
            ("cores_detected", cores.to_string()),
            ("rounds", rounds.to_string()),
            ("processes", NPROC.to_string()),
            ("clusters", CLUSTERS.to_string()),
            ("serial_events_per_s", json_num(serial_rate)),
        ];
        let keyed: Vec<(String, String)> = worker_rows
            .iter()
            .map(|(w, rate)| (format!("workers_{w}_events_per_s"), json_num(*rate)))
            .collect();
        for (k, v) in &keyed {
            wfields.push((k.as_str(), v.clone()));
        }
        merge_bench_section("kernel_scale_workers", &json_obj(&wfields));
        println!("wrote kernel_scale_workers section of BENCH_sim.json");

        // Coalesce A/B snapshot. `identity_ok` is written only after the
        // in-binary bit-identity asserts above have passed.
        let cfields: Vec<(&str, String)> = vec![
            ("cores_detected", cores.to_string()),
            ("rounds", rounds.to_string()),
            ("processes", NPROC.to_string()),
            ("events_applied", e1.events_processed.to_string()),
            ("eager_events_per_s", json_num(eager_rate)),
            ("coalesced_events_per_s", json_num(coalesced_rate)),
            ("speedup_x", json_num(coalesce_speedup)),
            ("skewed_speedup_x", json_num(skewed_speedup)),
            ("recompute_churn", churn.to_string()),
            ("recompute_solves", solves.to_string()),
            ("coalesced_absorbed", absorbed.to_string()),
            ("burst_mean", json_num(burst_mean)),
            ("burst_max", json_num(burst_max)),
            ("identity_ok", "1".to_string()),
        ];
        merge_bench_section("kernel_scale_coalesce", &json_obj(&cfields));
        println!("wrote kernel_scale_coalesce section of BENCH_sim.json");
    }
}
