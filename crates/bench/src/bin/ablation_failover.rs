//! **A-FT** (DESIGN.md): fault-tolerance ablation — the §5 future-work
//! capability built on the paper's own machinery (periodic SRS checkpoints
//! to stable IBP storage, heartbeat-based failure suspicion, restart-style
//! rescheduling onto survivors).
//!
//! Sweeps the periodic-checkpoint cadence against a mid-run host failure,
//! showing the classic tradeoff: tighter cadence costs more during healthy
//! execution but loses less work on failure. A no-failure column isolates
//! the pure checkpointing overhead.
//!
//! Usage: `cargo run --release -p grads-bench --bin ablation_failover`

use grads_bench::sweep::{default_workers, run_sweep};
use grads_core::apps::{run_ft_experiment, FtExperimentConfig};
use grads_core::sim::topology::macrogrid_qr;

fn main() {
    let grid = macrogrid_qr();
    let workers = grid.hosts_of("UTK");
    let depot = grid.hosts_of("UIUC")[0];
    println!("A-FT — periodic checkpointing vs a host failure (QR N=8000 on UTK,");
    println!("stable depot at UIUC, utk-0 fails at t = 120 s)\n");
    println!(
        "{:>14} {:>16} {:>16} {:>12} {:>12}",
        "ckpt cadence", "healthy total(s)", "failure total(s)", "lost steps", "recoveries"
    );
    // Each cadence cell (healthy + failure run) is independent — fan out
    // over the sweep runner; rows print in cadence order.
    let cadences = [1usize, 2, 4, 8, 16];
    let rows = run_sweep(&cadences, default_workers(), |_, &every| {
        let healthy = FtExperimentConfig {
            ckpt_every_chunks: every,
            fail_at: 1e9,
            ..Default::default()
        };
        let rh = run_ft_experiment(grid.clone(), &workers, depot, healthy);
        let faulty = FtExperimentConfig {
            ckpt_every_chunks: every,
            ..Default::default()
        };
        let rf = run_ft_experiment(grid.clone(), &workers, depot, faulty);
        assert!(rh.completed && rf.completed, "runs must complete");
        format!(
            "{:>10} chnk {:>16.1} {:>16.1} {:>12} {:>12}",
            every, rh.total_time, rf.total_time, rf.lost_steps, rf.recoveries
        )
    });
    for row in rows {
        println!("{row}");
    }
    println!("\nshape to check: healthy-run time grows as the cadence tightens (checkpoint");
    println!("traffic to the stable depot), failure-run lost work shrinks; the sweet spot");
    println!("balances the two. Every failure run recovers exactly once and completes on");
    println!("the surviving hosts.");
}
