//! **V-MICRO**: emulation-validation exercise in the spirit of §4.2 —
//! *"We earlier ran very similar experiments on the MacroGrid, validating
//! both the MicroGrid's emulation and the rescheduling method's
//! practicality."*
//!
//! We cannot compare against real clusters, but we can check the property
//! that makes emulation-based conclusions trustworthy: the *decisions and
//! shapes* (swap fired? when? did progress recover?) are stable across
//! equivalent topology descriptions and robust to modest parameter error.
//! Three runs of the Figure 4 scenario:
//!
//! 1. the hand-built MicroGrid topology,
//! 2. the same topology parsed from its DML description,
//! 3. a perturbed variant (±10% host speeds, +20% WAN latency).
//!
//! A second exercise sweeps the topology *size*: 2, 4 and 8 worker
//! clusters of 3 hosts each (MicroGrid-shaped: alternating 550/450 MHz
//! clusters, 125 MB/s / 50 µs LANs, 8 Mb/s WAN mesh, a 1.7 GHz monitor
//! host). Each topology runs twice; end time and kernel event count must
//! be bit-identical between the runs (the determinism contract holds at
//! every scale), and the kernel's event rate per simulated second is
//! reported as the emulation-cost trend.
//!
//! Usage: `cargo run --release -p grads-bench --bin validation_microgrid`

use grads_bench::sweep::{default_workers, run_sweep};
use grads_core::apps::{run_nbody_experiment, NbodyConfig, NbodyExperimentConfig};
use grads_core::sim::parse_dml;
use grads_core::sim::prelude::*;
use grads_core::sim::topology::{microgrid_nbody, GridBuilder, HostSpec};

const MICROGRID_DML: &str = r#"
cluster UTK {
    hosts 3
    speed 550e6
    link 125e6 50e-6
}
cluster UIUC {
    hosts 3
    speed 450e6
    link 125e6 50e-6
}
cluster UCSD {
    hosts 1
    speed 1.7e9
    link 125e6 50e-6
}
connect UTK UIUC 8e6 0.011
connect UCSD UTK 8e6 0.030
connect UCSD UIUC 8e6 0.030
"#;

const PERTURBED_DML: &str = r#"
cluster UTK {
    hosts 3
    speed 605e6
    link 125e6 50e-6
}
cluster UIUC {
    hosts 3
    speed 405e6
    link 125e6 50e-6
}
cluster UCSD {
    hosts 1
    speed 1.7e9
    link 125e6 50e-6
}
connect UTK UIUC 8e6 0.0132
connect UCSD UTK 8e6 0.036
connect UCSD UIUC 8e6 0.036
"#;

fn run(grid: Grid, label: &str) -> (String, f64, usize, f64) {
    let mut workers = grid.hosts_of("UTK");
    workers.extend(grid.hosts_of("UIUC"));
    let monitor = grid.hosts_of("UCSD")[0];
    let cfg = NbodyExperimentConfig {
        app: NbodyConfig {
            n_bodies: 96,
            iters: 300,
            flops_per_pair: 2e5,
            ..Default::default()
        },
        t_max: 4000.0,
        ..Default::default()
    };
    let r = run_nbody_experiment(grid, &workers, monitor, cfg);
    let swap_t = r.swaps.first().map(|&(t, _)| t).unwrap_or(f64::NAN);
    (label.to_string(), swap_t, r.swaps.len(), r.end_time)
}

/// MicroGrid-shaped topology with `k` worker clusters of 3 hosts each
/// plus a fast monitor host: alternating 550/450 MHz clusters, LAN
/// 125 MB/s / 50 µs, WAN mesh at 8 Mb/s (11 ms worker–worker, 30 ms to
/// the monitor) — `microgrid_nbody` generalized along the cluster axis.
fn sweep_grid(k: usize) -> (Grid, Vec<HostId>, HostId) {
    let mut b = GridBuilder::new();
    let mut workers = Vec::new();
    let mut cls = Vec::new();
    for i in 0..k {
        let c = b.cluster(&format!("W{i}"));
        b.local_link(c, 125e6, 50e-6);
        let speed = if i % 2 == 0 { 550e6 } else { 450e6 };
        workers.extend(b.add_hosts(c, 3, &HostSpec::with_speed(speed)));
        cls.push(c);
    }
    let mon = b.cluster("MON");
    b.local_link(mon, 125e6, 50e-6);
    let mh = b.add_host(mon, &HostSpec::with_speed(1.7e9));
    for i in 0..k {
        for j in i + 1..k {
            b.connect(cls[i], cls[j], 8e6, 0.011);
        }
        b.connect(mon, cls[i], 8e6, 0.030);
    }
    (b.build().expect("static topology"), workers, mh)
}

fn cluster_sweep() {
    println!("\ncluster-count sweep — event rate and per-topology determinism\n");
    println!(
        "{:<10} {:>6} {:>12} {:>14} {:>14}",
        "clusters", "hosts", "events", "completion(s)", "events/sim-s"
    );
    // Each topology size (and each of its two verification runs) is an
    // independent engine scenario — fan the whole grid out over the sweep
    // runner and render rows in size order.
    let sizes = [2usize, 4, 8];
    let rows = run_sweep(&sizes, default_workers(), |_, &k| {
        let run_once = || {
            let (g, workers, mon) = sweep_grid(k);
            let cfg = NbodyExperimentConfig {
                app: NbodyConfig {
                    n_bodies: 96,
                    iters: 150,
                    flops_per_pair: 2e5,
                    ..Default::default()
                },
                t_max: 4000.0,
                ..Default::default()
            };
            run_nbody_experiment(g, &workers, mon, cfg)
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(
            a.end_time.to_bits(),
            b.end_time.to_bits(),
            "end time must be bit-identical across runs at {k} clusters"
        );
        assert_eq!(
            a.events_processed, b.events_processed,
            "kernel event count must be identical across runs at {k} clusters"
        );
        assert_eq!(a.swaps.len(), b.swaps.len());
        let rate = a.events_processed as f64 / a.end_time;
        format!(
            "{k:<10} {:>6} {:>12} {:>14.1} {:>14.1}",
            3 * k + 1,
            a.events_processed,
            a.end_time,
            rate
        )
    });
    for row in rows {
        println!("{row}");
    }
    println!("\nDETERMINISTIC: repeated runs agree bitwise at every topology size.");
}

fn main() {
    println!("V-MICRO — decision stability across topology descriptions\n");
    println!(
        "{:<22} {:>10} {:>8} {:>14}",
        "topology", "swap at(s)", "swaps", "completion(s)"
    );
    type NamedTopology = (&'static str, fn() -> Grid);
    let topologies: [NamedTopology; 3] = [
        ("builder (reference)", microgrid_nbody),
        ("DML-parsed", || {
            parse_dml(MICROGRID_DML).expect("valid DML")
        }),
        ("perturbed ±10%", || {
            parse_dml(PERTURBED_DML).expect("valid DML")
        }),
    ];
    let runs = run_sweep(&topologies, default_workers(), |_, &(label, mk)| {
        run(mk(), label)
    });
    for (label, swap_t, swaps, end) in &runs {
        println!("{label:<22} {swap_t:>10.1} {swaps:>8} {end:>14.1}");
    }
    let (_, t0, n0, e0) = &runs[0];
    let (_, t1, n1, e1) = &runs[1];
    assert_eq!(n0, n1, "DML description must reproduce the builder exactly");
    assert!((t0 - t1).abs() < 1e-9);
    assert!((e0 - e1).abs() < 1e-9);
    let (_, t2, n2, e2) = &runs[2];
    println!();
    if n0 == n2 && (t0 - t2).abs() < 60.0 && (e0 - e2).abs() / e0 < 0.25 {
        println!("VALIDATED: identical decisions from the DML description; the perturbed");
        println!(
            "grid makes the same swap within {:.0} s and completes within {:.0}%.",
            (t0 - t2).abs(),
            (e0 - e2).abs() / e0 * 100.0
        );
    } else {
        println!("WARNING: decisions diverged under perturbation — inspect before trusting");
        println!("emulation-derived conclusions at this parameter scale.");
    }
    cluster_sweep();
}
