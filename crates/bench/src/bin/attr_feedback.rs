//! **ATTR**: the honest-attribution plane, measured end to end.
//!
//! Four measurements on the fig3 QR-migration scenario, plus one
//! multi-tenant service round:
//!
//! 1. **Zero perturbation** — a run with collective-internals (per-hop)
//!    recording attached is bit-identical to a bare run: same `end_time`,
//!    same full kernel report. Asserted, not just reported.
//! 2. **Honest vs opaque attribution** — per-host critical-path tables
//!    from the same timeline: the honest walk follows the collective's
//!    internal sends across ranks, the opaque walk treats collectives as
//!    black boxes. Both tile `[0, makespan]` bitwise; the mass the honest
//!    walk re-assigns between hosts is what per-hop recording buys.
//! 3. **Feedback ablation** — `SchedTune::attr_alpha_milli` off vs on:
//!    did the post-migration landing change, what happened to the
//!    makespan, and is the knob-on run rerun-byte-identical (asserted)?
//!    A direct map-level sweep then finds the alpha at which the
//!    *measured* attribution of the first incarnation flips the landing
//!    choice off the attributed cluster.
//! 4. **Service round spans** — a small admission/market round with the
//!    per-job span log enabled, exported as a Chrome trace artifact
//!    (CI uploads it; load in `chrome://tracing` or `ui.perfetto.dev`).
//!
//! Every number in the JSON is virtual-time-derived, so `BENCH_attr.json`
//! is byte-identical across reruns.
//!
//! Usage:
//!   cargo run --release -p grads-bench --bin attr_feedback          # full
//!   cargo run --release -p grads-bench --bin attr_feedback smoke    # CI smoke
//!   (optional: --export PATH for the service-round trace, default
//!   `target/service_round_trace.json`)
//!
//! Writes the `attr_feedback` (or `attr_feedback_smoke`) section of
//! `BENCH_attr.json` at the repository root.

use grads_bench::sweep::{json_num, json_obj, merge_bench_section_in};
use grads_core::apps::QrCop;
use grads_core::nws::SharedSnapshot;
use grads_core::obs::SegKind;
use grads_core::prelude::*;
use grads_core::service::SpanLog;
use grads_core::sim::topology::macrogrid_qr;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The alpha used for the on-leg of the end-to-end ablation (same value
/// the apps-crate regression pins for rerun identity).
const ABLATION_ALPHA_MILLI: u32 = 500;

/// Map-level sweep for the decision flip, thousandths.
const FLIP_SWEEP: &[u32] = &[0, 2000, 4000, 6000, 8000];

/// The fig3 stop/restart scenario with a chosen recorder and attribution
/// strength. Same shape as the root `obs_determinism` fixture.
fn fig3(n_real: usize, rec: Recorder, alpha_milli: u32) -> QrExperimentResult {
    let mut cfg = QrExperimentConfig::paper(20000);
    cfg.qr.n_real = n_real;
    cfg.qr.block = 4;
    cfg.qr.poll_every = 4;
    cfg.load_at = 60.0;
    cfg.monitor_period = 10.0;
    cfg.t_max = 50_000.0;
    cfg.recorder = rec;
    cfg.sched = SchedTune::default().with_attr_alpha_milli(alpha_milli);
    run_qr_experiment(macrogrid_qr(), cfg)
}

/// `(host, seconds)` list → map, for set comparison and L1 distance.
fn host_map(v: &[(String, f64)]) -> BTreeMap<String, f64> {
    v.iter().cloned().collect()
}

fn main() {
    let mut smoke = std::env::var("GRADS_ATTR_SMOKE").is_ok();
    let mut export = String::from("target/service_round_trace.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "smoke" => smoke = true,
            "--export" => export = args.next().expect("--export takes a path"),
            other => panic!("unrecognized argument {other:?}"),
        }
    }
    let n_real = if smoke { 48 } else { 64 };
    let section = if smoke {
        "attr_feedback_smoke"
    } else {
        "attr_feedback"
    };
    println!("attr_feedback — honest attribution plane (n_real = {n_real})");

    // -------- 1. zero perturbation --------
    let plain = fig3(n_real, Recorder::disabled(), 0);
    let rec = Recorder::enabled_with_internals();
    let off = fig3(n_real, rec.clone(), 0);
    assert!(plain.migrated && off.migrated, "fixture must migrate");
    assert_eq!(
        plain.report.end_time.to_bits(),
        off.report.end_time.to_bits(),
        "collective-internals recording must not perturb the run"
    );
    assert_eq!(plain.report, off.report, "full report must be identical");
    println!(
        "zero perturbation: internals-recorded run bit-identical to bare run \
         (end_time = {:.3} s)",
        off.report.end_time
    );

    // -------- 2. honest vs opaque per-host attribution --------
    let tl = rec.timeline();
    let makespan = tl.makespan();
    let honest_path = tl.critical_path();
    let opaque_path = tl.critical_path_opaque();
    let honest = host_map(&tl.critical_path_by_host(&honest_path));
    let opaque = host_map(&tl.critical_path_by_host(&opaque_path));
    println!("\nper-host critical-path attribution (makespan {makespan:.3} s):");
    println!(
        "  {:<14} {:>12} {:>12} {:>12}",
        "host", "honest s", "opaque s", "delta s"
    );
    let mut reassigned = 0.0f64;
    let hosts: std::collections::BTreeSet<&String> = honest.keys().chain(opaque.keys()).collect();
    for h in &hosts {
        let a = honest.get(*h).copied().unwrap_or(0.0);
        let b = opaque.get(*h).copied().unwrap_or(0.0);
        reassigned += (a - b).abs();
        println!("  {:<14} {a:>12.3} {b:>12.3} {:>12.3}", h.as_str(), a - b);
    }
    // Each second moved shows up once as +delta and once as -delta.
    reassigned /= 2.0;
    assert!(
        honest != opaque,
        "honest and opaque walks must attribute differently on fig3"
    );
    println!(
        "honest walk re-assigns {reassigned:.3} s of critical path \
         ({:.1}% of the makespan) relative to the opaque walk",
        100.0 * reassigned / makespan
    );

    // -------- 3. feedback ablation --------
    // End-to-end: same scenario with the knob on. The manager feeds the
    // first incarnation's per-host shares into the landing map.
    let on = fig3(n_real, Recorder::enabled(), ABLATION_ALPHA_MILLI);
    let on2 = fig3(n_real, Recorder::enabled(), ABLATION_ALPHA_MILLI);
    assert!(on.migrated, "knob-on fixture must still migrate");
    assert_eq!(
        on.final_hosts, on2.final_hosts,
        "knob-on rerun: same landing"
    );
    assert_eq!(
        on.total_time.to_bits(),
        on2.total_time.to_bits(),
        "knob-on rerun must be byte-identical"
    );
    let decision_changed = on.final_hosts != off.final_hosts;
    println!(
        "\nablation (alpha {} vs 0): landing changed = {decision_changed}, \
         total_time {:.3} s vs {:.3} s (delta {:+.3} s)",
        ABLATION_ALPHA_MILLI,
        on.total_time,
        off.total_time,
        on.total_time - off.total_time
    );

    // Map-level flip sweep: weights are the *measured* shares of the
    // first incarnation (the path up to the migration bridge), exactly
    // what the manager computes at the stop point.
    let grid = macrogrid_qr();
    let cut = honest_path
        .iter()
        .position(|s| matches!(s.kind, SegKind::Bridge { .. }))
        .expect("migrated run has a bridge on the path");
    let first = tl.critical_path_by_host(&honest_path[..cut]);
    let total: f64 = first.iter().map(|(_, d)| d).sum();
    let mut weights = vec![0.0f64; grid.hosts().len()];
    for (label, d) in &first {
        if let Some(i) = grid.hosts().iter().position(|h| h.name == *label) {
            weights[i] = d / total;
        }
    }
    let weights = Arc::new(weights);
    let snap = ForecastSnapshot::capture(&grid, &NwsService::new());
    let all: Vec<HostId> = (0..grid.hosts().len() as u32).map(HostId).collect();
    let mut cop = QrCop {
        cfg: QrExperimentConfig::paper(20000).qr,
        min_procs: 4,
        max_procs: 8,
        tune: SchedTune::fast(),
        shared_snap: SharedSnapshot::new(),
        snap_trace: Arc::new(Mutex::new(Vec::new())),
        attr_weights: Arc::new(Mutex::new(Some(weights))),
    };
    println!("\nmap-level flip sweep (measured first-incarnation weights):");
    let mut base_choice: Option<Vec<HostId>> = None;
    let mut flip_alpha: Option<u32> = None;
    for &alpha in FLIP_SWEEP {
        cop.tune = SchedTune::fast().with_attr_alpha_milli(alpha);
        let choice = cop.map_fast(&grid, &snap, &all).expect("candidates");
        let cluster = &grid.clusters()[grid.host(choice[0]).cluster.0 as usize].name;
        println!("  alpha {alpha:>5} m -> {cluster} ({} slots)", choice.len());
        match &base_choice {
            None => base_choice = Some(choice),
            Some(b) if *b != choice && flip_alpha.is_none() => flip_alpha = Some(alpha),
            _ => {}
        }
    }
    let flip_alpha = flip_alpha.expect("sweep must flip the landing off the attributed cluster");
    println!("landing flips off the attributed cluster at alpha {flip_alpha} m");

    // -------- 4. service round with per-job spans --------
    let spans = SpanLog::enabled();
    let scfg = ServiceConfig {
        workload: WorkloadConfig {
            n_jobs: 120,
            n_tenants: 4,
            mean_interarrival_s: 2.0,
            ..WorkloadConfig::default()
        },
        hosts: 32,
        clusters: 4,
        cores_per_host: 2,
        sched: SchedTune::fast(),
        spans: spans.clone(),
        ..ServiceConfig::default()
    };
    let sres = run_service_experiment(scfg);
    let trace = spans.to_chrome_trace();
    if let Some(dir) = std::path::Path::new(&export).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create export directory");
        }
    }
    std::fs::write(&export, &trace).expect("write service-round trace");
    println!(
        "\nservice round: {} jobs completed, {} spans -> {export} ({} bytes)",
        sres.totals.completed,
        spans.spans().len(),
        trace.len()
    );

    // -------- JSON section --------
    let fields: Vec<(&str, String)> = vec![
        ("makespan_s", json_num(makespan)),
        ("honest_hosts", json_num(honest.len() as f64)),
        ("opaque_hosts", json_num(opaque.len() as f64)),
        ("attr_reassigned_s", json_num(reassigned)),
        ("attr_reassigned_frac", json_num(reassigned / makespan)),
        ("off_total_time_s", json_num(off.total_time)),
        ("on_total_time_s", json_num(on.total_time)),
        (
            "ablation_makespan_delta_s",
            json_num(on.total_time - off.total_time),
        ),
        (
            "ablation_decision_changed",
            json_num(if decision_changed { 1.0 } else { 0.0 }),
        ),
        (
            "ablation_alpha_milli",
            json_num(ABLATION_ALPHA_MILLI as f64),
        ),
        ("flip_alpha_milli", json_num(flip_alpha as f64)),
        (
            "service_jobs_completed",
            json_num(sres.totals.completed as f64),
        ),
        ("service_spans", json_num(spans.spans().len() as f64)),
        ("service_trace_bytes", json_num(trace.len() as f64)),
    ];
    merge_bench_section_in("BENCH_attr.json", section, &json_obj(&fields));
    println!("\nwrote section {section:?} of BENCH_attr.json");
}
