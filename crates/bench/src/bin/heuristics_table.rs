//! Regenerate **T-HEUR** (DESIGN.md): the §3.1 heuristic comparison over
//! randomized workflows and grids — the kind of evaluation the paper's
//! heuristics were selected from (Braun et al., Casanova et al.).
//!
//! For each of `trials` seeded random (workflow, grid) instances, every
//! strategy schedules the same instance; the table reports average
//! makespan and win counts.
//!
//! Usage: `cargo run --release -p grads-bench --bin heuristics_table [trials]`

use grads_bench::sweep::{default_workers, run_sweep};
use grads_core::nws::NwsService;
use grads_core::perf::{FittedModel, OpCountModel, ResourceInfo};
use grads_core::sched::{
    schedule_greedy_ecost, schedule_heft, schedule_random, schedule_round_robin, Heuristic,
    Workflow, WorkflowScheduler,
};
use grads_core::sim::prelude::*;
use grads_core::sim::topology::GridBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn random_grid(rng: &mut StdRng) -> Grid {
    let mut b = GridBuilder::new();
    let n_clusters = rng.gen_range(2..=4);
    let mut ids = Vec::new();
    for c in 0..n_clusters {
        let id = b.cluster(&format!("C{c}"));
        b.local_link(id, rng.gen_range(2e7..2e8), 1e-4);
        let n_hosts = rng.gen_range(2..=6);
        let speed = rng.gen_range(5e8..4e9);
        b.add_hosts(id, n_hosts, &HostSpec::with_speed(speed));
        ids.push(id);
    }
    for w in ids.windows(2) {
        b.connect(
            w[0],
            w[1],
            rng.gen_range(2e6..5e7),
            rng.gen_range(0.005..0.05),
        );
    }
    b.build().expect("random topology")
}

fn random_workflow(rng: &mut StdRng) -> Workflow {
    let mut wf = Workflow::new();
    let levels = rng.gen_range(2..=5);
    let mut prev: Vec<usize> = Vec::new();
    for l in 0..levels {
        let width = if l == 0 { 1 } else { rng.gen_range(1..=8) };
        let mut cur = Vec::new();
        for k in 0..width {
            let flops = rng.gen_range(5e8..5e10);
            let out = rng.gen_range(1e5..5e7);
            let c = wf.add_component(
                &format!("c{l}-{k}"),
                Arc::new(FittedModel {
                    problem_size: 1.0,
                    ops: OpCountModel {
                        coeffs: vec![flops],
                        degree: 0,
                        rms_rel_residual: 0.0,
                    },
                    mrd: None,
                    input_bytes: 0.0,
                    output_bytes: out,
                    min_memory: 0,
                    allowed: None,
                }),
            );
            // Wire to a random subset of the previous level.
            for &p in &prev {
                if rng.gen_bool(0.6) {
                    wf.add_edge(p, c, rng.gen_range(1e5..5e7));
                }
            }
            cur.push(c);
        }
        prev = cur;
    }
    wf
}

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    println!("T-HEUR — scheduling strategies over {trials} random (workflow, grid) instances\n");

    let names = [
        "min-min",
        "max-min",
        "sufferage",
        "grads-best",
        "heft",
        "greedy-ecost",
        "round-robin",
        "random",
    ];
    // Trials are seeded independently, so they fan out over the sweep
    // runner; per-trial makespan vectors come back in trial order and the
    // accumulation below is a deterministic fold over them.
    let trial_ids: Vec<usize> = (0..trials).collect();
    let per_trial = run_sweep(&trial_ids, default_workers(), |_, &trial| {
        let mut rng = StdRng::seed_from_u64(1000 + trial as u64);
        let grid = random_grid(&mut rng);
        let wf = random_workflow(&mut rng);
        let nws = NwsService::new();
        let resources: Vec<ResourceInfo> = (0..grid.hosts().len() as u32)
            .map(|i| ResourceInfo::from_grid(&grid, &nws, HostId(i)))
            .collect();
        let sched = WorkflowScheduler::default();
        let mut makespans = Vec::new();
        for h in Heuristic::all() {
            makespans.push(
                sched
                    .schedule_with(h, &wf, &grid, &nws, &resources)
                    .makespan,
            );
        }
        let best3 = makespans.iter().copied().fold(f64::INFINITY, f64::min);
        makespans.push(best3);
        makespans.push(schedule_heft(&wf, &grid, &nws, &resources).makespan);
        makespans.push(schedule_greedy_ecost(&wf, &grid, &nws, &resources).makespan);
        makespans.push(schedule_round_robin(&wf, &grid, &nws, &resources).makespan);
        makespans.push(schedule_random(&wf, &grid, &nws, &resources, trial as u64).makespan);
        makespans
    });
    let mut sums = vec![0.0f64; names.len()];
    let mut wins = vec![0usize; names.len()];
    for makespans in &per_trial {
        let best = makespans.iter().copied().fold(f64::INFINITY, f64::min);
        for (i, &m) in makespans.iter().enumerate() {
            sums[i] += m;
            if m <= best * 1.001 {
                wins[i] += 1;
            }
        }
    }
    println!(
        "{:<14} {:>16} {:>10}",
        "strategy", "avg makespan(s)", "wins"
    );
    for (i, name) in names.iter().enumerate() {
        println!(
            "{name:<14} {:>16.1} {:>10}",
            sums[i] / trials as f64,
            wins[i]
        );
    }
    println!("\npaper shape to check: taking the best of the three GrADS heuristics");
    println!("dominates every single heuristic; all informed strategies beat the naive");
    println!("baselines by a wide margin.");
}
