//! Wall-clock microbenchmarks of the emulator substrate's hot paths.
//!
//! Four storms, each isolating one layer of the kernel:
//!
//! * **handoff ping-pong** — one process bouncing `ctx.now()` off the
//!   kernel: one request/grant pair per op and near-zero event-kernel
//!   work, so this measures the process↔kernel transport and nothing
//!   else. Run under both transports; the direct single-slot rendezvous
//!   must beat the seed mpsc-channel pair by ≥2× (asserted).
//! * **message ping-pong** — two processes bouncing a message back and
//!   forth on a LAN. Every round trip is four kernel handoffs plus the
//!   flow machinery (activate/done events, rate solve, mailbox), so the
//!   transport win is diluted by DES work the transports share; direct
//!   must still be ≥1.5× (asserted).
//! * **spawn storm** — thousands of short-lived processes; measures the
//!   spawn/start/exit bookkeeping (thread creation dominates, but name
//!   interning and mailbox reclamation show up here too).
//! * **cancel storm** — compute actions on a loaded host whose external
//!   load toggles at dense cadence, re-stamping every action each time.
//!   Each re-stamp cancels a pending completion event: the stale-mark
//!   queue buries them for pop-time discarding, the indexed queue removes
//!   them in O(log n). Reports events applied/sec for both queues.
//!
//! Writes the `sim_hotpath` section of `BENCH_sim.json` at the repo root.
//!
//! Usage: `cargo run --release -p grads-bench --bin sim_hotpath [rounds]`
//! (default 30000 ping-pong rounds; storms scale accordingly).

use grads_bench::sweep::{json_num, json_obj, merge_bench_section};
use grads_core::prelude::*;
use std::time::Instant;

fn lan_pair() -> (Grid, Vec<HostId>) {
    let mut b = GridBuilder::new();
    let c = b.cluster("LAN");
    b.local_link(c, 1.0e9, 1.0e-4);
    let hosts = b.add_hosts(c, 2, &HostSpec::with_speed(1e9));
    (b.build().unwrap(), hosts)
}

/// Raw handoff ping-pong: one process performing `n` clock reads, each a
/// single request/grant round trip with no event-kernel work behind it.
/// Returns handoffs/sec wall-clock.
fn handoff_pong(tune: EngineTune, n: usize) -> f64 {
    let (grid, hosts) = lan_pair();
    let mut eng = Engine::new(grid);
    eng.apply_tune(tune);
    eng.spawn("clock", hosts[0], move |ctx| {
        let mut acc = 0.0;
        for _ in 0..n {
            acc += ctx.now();
        }
        assert_eq!(acc, 0.0, "virtual clock never advances here");
    });
    let t0 = Instant::now();
    let report = eng.run();
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(report.completed.len(), 1);
    n as f64 / wall
}

/// One ping-pong run: `rounds` round trips, `4 * rounds` kernel handoffs.
/// Returns (ops/sec wall-clock, virtual end time as a determinism check).
fn ping_pong(tune: EngineTune, rounds: usize) -> (f64, f64) {
    let (grid, hosts) = lan_pair();
    let mut eng = Engine::new(grid);
    eng.apply_tune(tune);
    let (h0, h1) = (hosts[0], hosts[1]);
    let k_ping = mail_key(&[1]);
    let k_pong = mail_key(&[2]);
    eng.spawn("ping", h0, move |ctx| {
        for _ in 0..rounds {
            ctx.send(k_ping, h1, 1.0, Box::new(()));
            let _ = ctx.recv(k_pong);
        }
    });
    eng.spawn("pong", h1, move |ctx| {
        for _ in 0..rounds {
            let _ = ctx.recv(k_ping);
            ctx.send(k_pong, h0, 1.0, Box::new(()));
        }
    });
    let t0 = Instant::now();
    let report = eng.run();
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(report.completed.len(), 2);
    ((4 * rounds) as f64 / wall, report.end_time)
}

/// Spawn storm: `n` short-lived processes. Returns spawns/sec.
fn spawn_storm(tune: EngineTune, n: usize) -> f64 {
    let (grid, hosts) = lan_pair();
    let mut eng = Engine::new(grid);
    eng.apply_tune(tune);
    for i in 0..n {
        eng.spawn("w", hosts[i % 2], |ctx| {
            ctx.compute(1e3);
        });
    }
    let t0 = Instant::now();
    let report = eng.run();
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(report.completed.len(), n);
    n as f64 / wall
}

/// Cancel storm: `procs` long computes on one host, with external load
/// toggling `toggles` times — every toggle re-stamps every action and
/// cancels its pending completion event. Returns (applied events/sec,
/// events applied, virtual end time).
fn cancel_storm(tune: EngineTune, procs: usize, toggles: usize) -> (f64, u64, f64) {
    let mut b = GridBuilder::new();
    let c = b.cluster("LAN");
    b.local_link(c, 1.0e9, 1.0e-4);
    let hosts = b.add_hosts(c, 1, &HostSpec::with_speed(1e9));
    let mut eng = Engine::new(b.build().unwrap());
    eng.apply_tune(tune);
    let h = hosts[0];
    for t in 0..toggles {
        let at = 0.5 + t as f64 * 0.01;
        eng.add_load_window(h, at, Some(at + 0.005), 2.0);
    }
    for _ in 0..procs {
        eng.spawn("c", h, |ctx| {
            ctx.compute(2e9);
        });
    }
    let t0 = Instant::now();
    let report = eng.run();
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(report.completed.len(), procs);
    (
        report.events_processed as f64 / wall,
        report.events_processed,
        report.end_time,
    )
}

fn main() {
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);

    let direct = EngineTune::default();
    let channel = EngineTune {
        handoff: HandoffMode::Channel,
        ..Default::default()
    };
    let indexed = EngineTune::default();
    let stale = EngineTune {
        queue: EventQueueMode::StaleMark,
        ..Default::default()
    };

    println!("sim_hotpath — substrate wall-clock microbenchmarks\n");

    // Warm-up pass so thread-pool and allocator effects don't skew run 1;
    // best-of-2 to damp scheduler noise on small machines.
    let _ = ping_pong(direct, rounds / 10);
    let best = |tune: EngineTune| {
        let (a, end) = ping_pong(tune, rounds);
        let (b, _) = ping_pong(tune, rounds);
        (a.max(b), end)
    };

    let n_handoff = rounds * 2;
    let ho_direct = handoff_pong(direct, n_handoff).max(handoff_pong(direct, n_handoff));
    let ho_channel = handoff_pong(channel, n_handoff).max(handoff_pong(channel, n_handoff));
    let ho_speedup = ho_direct / ho_channel;
    println!("handoff ping-pong ({n_handoff} request/grant round trips):");
    println!("  channel (seed mpsc pair)   {ho_channel:>12.0} handoffs/s");
    println!("  direct (rendezvous slot)   {ho_direct:>12.0} handoffs/s   ({ho_speedup:.2}x)");
    assert!(
        ho_speedup >= 2.0,
        "direct handoff must be >= 2x channel on raw handoffs (got {ho_speedup:.2}x)"
    );

    let (ops_direct, end_d) = best(direct);
    let (ops_channel, end_c) = best(channel);
    assert_eq!(
        end_d.to_bits(),
        end_c.to_bits(),
        "transports must agree on virtual time"
    );
    let speedup = ops_direct / ops_channel;
    println!("\nmessage ping-pong ({rounds} round trips, 4 handoffs each):");
    println!("  channel (seed mpsc pair)   {ops_channel:>12.0} ops/s");
    println!("  direct (rendezvous slot)   {ops_direct:>12.0} ops/s   ({speedup:.2}x)");
    assert!(
        speedup >= 1.5,
        "direct handoff must be >= 1.5x channel on message ping-pong (got {speedup:.2}x)"
    );

    // Spin vs yield on the direct transport's wait loop. The auto policy
    // picks spin on multicore boxes and yield on single-core ones; pinning
    // each explicitly measures what that heuristic is choosing between.
    // Wait strategy cannot perturb virtual time (it only decides how a
    // blocked thread burns the wait), so no determinism assert is needed —
    // but the end-time check comes free from handoff_pong's asserts.
    let ho_spin = {
        set_wait_policy(WaitPolicy::Spin);
        handoff_pong(direct, n_handoff).max(handoff_pong(direct, n_handoff))
    };
    let ho_yield = {
        set_wait_policy(WaitPolicy::Yield);
        handoff_pong(direct, n_handoff).max(handoff_pong(direct, n_handoff))
    };
    set_wait_policy(WaitPolicy::Auto);
    println!("\nhandoff wait policy (direct transport, {n_handoff} round trips):");
    println!("  spin (384 iters first)     {ho_spin:>12.0} handoffs/s");
    println!("  yield (sched-friendly)     {ho_yield:>12.0} handoffs/s");
    println!(
        "  faster here: {} ({:.2}x) — auto picks spin iff multicore",
        if ho_spin >= ho_yield { "spin" } else { "yield" },
        (ho_spin / ho_yield).max(ho_yield / ho_spin)
    );

    let n_spawn = (rounds / 10).max(1000);
    let sp_direct = spawn_storm(direct, n_spawn);
    let sp_channel = spawn_storm(channel, n_spawn);
    println!("\nspawn storm ({n_spawn} processes):");
    println!("  channel                    {sp_channel:>12.0} spawns/s");
    println!("  direct                     {sp_direct:>12.0} spawns/s");

    let (procs, toggles) = (100, 2000);
    let (ev_indexed, n_ev_i, end_i) = cancel_storm(indexed, procs, toggles);
    let (ev_stale, n_ev_s, end_s) = cancel_storm(stale, procs, toggles);
    assert_eq!(
        end_i.to_bits(),
        end_s.to_bits(),
        "queues must agree on virtual time"
    );
    assert_eq!(n_ev_i, n_ev_s, "queues must apply identical event counts");
    println!("\ncancel storm ({procs} computes x {toggles} load toggles, {n_ev_i} events):");
    println!("  stale-mark (seed)          {ev_stale:>12.0} events/s");
    println!("  indexed (O(log n) remove)  {ev_indexed:>12.0} events/s");

    // Machine/substrate stamps so a checked-in snapshot says where its
    // numbers came from (a 2-core CI runner and a 32-core workstation
    // produce very different ops/s for the same code).
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    merge_bench_section(
        "sim_hotpath",
        &json_obj(&[
            ("cores_detected", cores.to_string()),
            (
                "substrate",
                "\"direct_handoff+indexed_queue (A/B vs seed in-section)\"".to_string(),
            ),
            ("handoff_rounds", n_handoff.to_string()),
            ("handoff_channel_per_s", json_num(ho_channel)),
            ("handoff_direct_per_s", json_num(ho_direct)),
            ("handoff_speedup", json_num(ho_speedup)),
            ("handoff_spin_per_s", json_num(ho_spin)),
            ("handoff_yield_per_s", json_num(ho_yield)),
            ("ping_pong_rounds", rounds.to_string()),
            ("ping_pong_channel_ops_per_s", json_num(ops_channel)),
            ("ping_pong_direct_ops_per_s", json_num(ops_direct)),
            ("ping_pong_speedup", json_num(speedup)),
            ("spawn_storm_procs", n_spawn.to_string()),
            ("spawn_channel_per_s", json_num(sp_channel)),
            ("spawn_direct_per_s", json_num(sp_direct)),
            ("cancel_storm_events", n_ev_i.to_string()),
            ("cancel_stale_events_per_s", json_num(ev_stale)),
            ("cancel_indexed_events_per_s", json_num(ev_indexed)),
        ]),
    );
    println!("\nwrote sim_hotpath section of BENCH_sim.json");
}
