//! Deterministic parallel sweep runner for independent scenarios.
//!
//! Every figure/table harness in this crate boils down to the same shape:
//! run N independent engine scenarios (a parameter sweep, randomized
//! trials, an ablation grid) and print one line or JSON block per
//! scenario. The scenarios share nothing — each builds its own `Engine` —
//! so they can fan out over OS threads, as long as the *output* stays
//! byte-identical to a serial run.
//!
//! [`run_sweep`] guarantees exactly that: workers pull scenario indices
//! from a shared atomic counter (so scheduling is work-stealing and
//! non-deterministic), but results are collected with their indices and
//! returned sorted by scenario index. Nothing about a scenario's *result*
//! may depend on which worker ran it or when — true here because the
//! engine is deterministic per scenario — and
//! `tests/sweep_determinism.rs` pins the 1-worker and N-worker outputs to
//! byte equality.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of sweep workers: `GRADS_SWEEP_WORKERS` if set (minimum 1),
/// otherwise the machine's available parallelism.
pub fn default_workers() -> usize {
    if let Ok(s) = std::env::var("GRADS_SWEEP_WORKERS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f(index, &item)` for every item, fanning out over `workers` OS
/// threads, and return the results **in item order** regardless of which
/// worker computed what. With `workers <= 1` everything runs on the
/// calling thread (no spawn), which is the reference serial order.
pub fn run_sweep<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers.min(items.len()))
            .map(|_| {
                s.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            tagged.extend(h.join().expect("sweep worker panicked"));
        }
    });
    tagged.sort_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Path of the simulator benchmark snapshot at the repository root.
pub fn bench_json_path() -> std::path::PathBuf {
    bench_json_path_named("BENCH_sim.json")
}

/// Path of a named benchmark snapshot at the repository root (e.g.
/// `BENCH_sched.json` for the scheduler decision-path sweep).
pub fn bench_json_path_named(file: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(file)
}

/// Merge one named top-level section into `BENCH_sim.json` at the repo
/// root, preserving the other sections and their order. `body` must be a
/// valid JSON value (typically an object built with [`json_obj`]). The
/// file itself is a single JSON object keyed by section name.
pub fn merge_bench_section(section: &str, body: &str) {
    merge_bench_section_in("BENCH_sim.json", section, body)
}

/// [`merge_bench_section`] against an arbitrary snapshot file at the repo
/// root, so independent benchmark families (simulator substrate vs
/// scheduler decision path) keep separate checked-in snapshots.
pub fn merge_bench_section_in(file: &str, section: &str, body: &str) {
    let path = bench_json_path_named(file);
    let existing = std::fs::read_to_string(&path).unwrap_or_default();
    let mut sections = parse_top_level(&existing);
    match sections.iter_mut().find(|(k, _)| k == section) {
        Some((_, v)) => *v = body.to_string(),
        None => sections.push((section.to_string(), body.to_string())),
    }
    let mut out = String::from("{\n");
    for (i, (k, v)) in sections.iter().enumerate() {
        let sep = if i + 1 == sections.len() { "" } else { "," };
        out.push_str(&format!("  \"{k}\": {v}{sep}\n"));
    }
    out.push_str("}\n");
    std::fs::write(&path, out).unwrap_or_else(|e| panic!("write {file}: {e}"));
}

/// Split the top level of a JSON object into `(key, raw value)` pairs.
/// A balanced-brace scan is enough because we only ever read files this
/// module wrote (no escapes beyond plain strings, no nested quotes in
/// keys).
fn parse_top_level(s: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let Some(open) = s.find('{') else {
        return out;
    };
    let inner = &s[open + 1..];
    let bytes = inner.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        // Key.
        let Some(k0) = inner[i..].find('"').map(|o| i + o + 1) else {
            break;
        };
        let Some(k1) = inner[k0..].find('"').map(|o| k0 + o) else {
            break;
        };
        let key = inner[k0..k1].to_string();
        let Some(colon) = inner[k1..].find(':').map(|o| k1 + o) else {
            break;
        };
        // Value: scan to the comma (or closing brace) at depth zero.
        let mut depth = 0i32;
        let mut in_str = false;
        let mut j = colon + 1;
        let v0 = j;
        let mut v1 = bytes.len().saturating_sub(1);
        while j < bytes.len() {
            let c = bytes[j] as char;
            if in_str {
                if c == '\\' {
                    j += 1;
                } else if c == '"' {
                    in_str = false;
                }
            } else {
                match c {
                    '"' => in_str = true,
                    '{' | '[' => depth += 1,
                    '}' | ']' if depth > 0 => depth -= 1,
                    ',' | '}' if depth == 0 => {
                        v1 = j;
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        out.push((key, inner[v0..v1].trim().to_string()));
        i = v1 + 1;
    }
    out
}

/// Build a JSON object from `(key, raw value)` pairs, indented for the
/// section level of `BENCH_sim.json`.
pub fn json_obj(fields: &[(&str, String)]) -> String {
    let mut out = String::from("{\n");
    for (i, (k, v)) in fields.iter().enumerate() {
        let sep = if i + 1 == fields.len() { "" } else { "," };
        out.push_str(&format!("    \"{k}\": {v}{sep}\n"));
    }
    out.push_str("  }");
    out
}

/// Format an `f64` as a JSON number (finite; falls back to `null`).
pub fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_results_are_in_item_order() {
        let items: Vec<usize> = (0..97).collect();
        let serial = run_sweep(&items, 1, |i, &x| (i, x * x));
        for w in [2, 4, 8] {
            let par = run_sweep(&items, w, |i, &x| (i, x * x));
            assert_eq!(serial, par, "workers = {w}");
        }
        assert_eq!(serial[5], (5, 25));
    }

    #[test]
    fn top_level_parse_roundtrips() {
        let doc = "{\n  \"a\": {\n    \"x\": 1,\n    \"s\": \"v, {w}\"\n  },\n  \"b\": [1, 2],\n  \"c\": 3.5\n}\n";
        let sections = parse_top_level(doc);
        let keys: Vec<&str> = sections.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["a", "b", "c"]);
        assert!(sections[0].1.contains("\"s\": \"v, {w}\""));
        assert_eq!(sections[1].1, "[1, 2]");
        assert_eq!(sections[2].1, "3.5");
    }

    #[test]
    fn json_obj_formats_fields() {
        let o = json_obj(&[("a", "1".into()), ("b", json_num(2.5))]);
        assert!(o.contains("\"a\": 1,"));
        assert!(o.contains("\"b\": 2.500"));
        assert_eq!(json_num(f64::INFINITY), "null");
    }
}
