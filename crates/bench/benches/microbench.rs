//! Criterion microbenchmarks of the substrate (B-MICRO in DESIGN.md):
//! emulator event throughput, scheduling heuristics, reuse-distance
//! analysis, forecasting, block-cyclic redistribution, and a complete
//! small QR factorization through the simulated MPI stack.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use grads_core::mpi::launch;
use grads_core::nws::Ensemble;
use grads_core::perf::mrd::traces;
use grads_core::perf::{reuse_distances, ResourceInfo};
use grads_core::prelude::*;
use grads_core::sched::{map_tasks, Heuristic};
use grads_core::sim::topology::GridBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_engine_throughput(c: &mut Criterion) {
    c.bench_function("sim_engine_1000_compute_events", |b| {
        b.iter_batched(
            || {
                let mut gb = GridBuilder::new();
                let cl = gb.cluster("X");
                let hs = gb.add_hosts(cl, 4, &HostSpec::with_speed(1e9));
                let mut eng = Engine::new(gb.build().unwrap());
                for (i, &h) in hs.iter().enumerate() {
                    eng.spawn(&format!("w{i}"), h, |ctx| {
                        for _ in 0..250 {
                            ctx.compute(1e6);
                        }
                    });
                }
                eng
            },
            |eng| eng.run(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_messaging(c: &mut Criterion) {
    c.bench_function("sim_mpi_pingpong_200", |b| {
        b.iter_batched(
            || {
                let mut gb = GridBuilder::new();
                let cl = gb.cluster("X");
                gb.local_link(cl, 1e8, 1e-4);
                let hs = gb.add_hosts(cl, 2, &HostSpec::with_speed(1e9));
                let mut eng = Engine::new(gb.build().unwrap());
                launch(&mut eng, "pp", &hs, |ctx, comm| {
                    for i in 0..200u64 {
                        if comm.rank() == 0 {
                            comm.send_t(ctx, 1, i, 1024.0, i);
                            let _: u64 = comm.recv_t(ctx, 1, i);
                        } else {
                            let v: u64 = comm.recv_t(ctx, 0, i);
                            comm.send_t(ctx, 0, i, 1024.0, v);
                        }
                    }
                });
                eng
            },
            |eng| eng.run(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_heuristics(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let nt = 64;
    let nm = 24;
    let cost: Vec<Vec<f64>> = (0..nt)
        .map(|_| (0..nm).map(|_| rng.gen_range(1.0..100.0)).collect())
        .collect();
    let arrival = vec![vec![0.0; nm]; nt];
    for h in Heuristic::all() {
        c.bench_function(&format!("map_tasks_{}_64x24", h.name()), |b| {
            b.iter(|| {
                let mut ready = vec![0.0; nm];
                map_tasks(h, &cost, &arrival, &mut ready)
            })
        });
    }
}

fn bench_mrd(c: &mut Criterion) {
    let trace = traces::dense_factor(24);
    c.bench_function("reuse_distances_dense24", |b| {
        b.iter(|| reuse_distances(&trace))
    });
}

fn bench_forecasting(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    let vals: Vec<f64> = (0..500).map(|_| rng.gen_range(0.0..1.0)).collect();
    c.bench_function("nws_ensemble_500_updates", |b| {
        b.iter(|| {
            let mut e = Ensemble::standard();
            for &v in &vals {
                e.update(v);
            }
            e.forecast()
        })
    });
}

fn bench_redistribution(c: &mut Criterion) {
    let from = BlockCyclic::new(100_000, 64, 8);
    let to = BlockCyclic::new(100_000, 32, 12);
    c.bench_function("blockcyclic_redistribute_100k", |b| {
        b.iter(|| from.redistribute_plan(&to))
    });
}

fn bench_qr_end_to_end(c: &mut Criterion) {
    c.bench_function("qr_n48_p4_full_stack", |b| {
        b.iter_batched(
            || {
                let mut gb = GridBuilder::new();
                let cl = gb.cluster("X");
                gb.local_link(cl, 1e8, 1e-4);
                let hs = gb.add_hosts(cl, 4, &HostSpec::with_speed(1e9));
                let mut eng = Engine::new(gb.build().unwrap());
                let cfg = grads_core::apps::QrConfig::full(48, 4);
                launch(&mut eng, "qr", &hs, move |ctx, comm| {
                    let mut local =
                        grads_core::apps::QrLocal::generate(&cfg, comm.rank(), comm.size());
                    grads_core::apps::run_qr_rank(ctx, comm, &cfg, &mut local, None, 0);
                });
                eng
            },
            |eng| eng.run(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_workflow_schedule(c: &mut Criterion) {
    let grid = grads_core::apps::eman_grid();
    let nws = NwsService::new();
    let resources: Vec<ResourceInfo> = (0..grid.hosts().len() as u32)
        .map(|i| ResourceInfo::from_grid(&grid, &nws, HostId(i)))
        .collect();
    let (wf, _) = grads_core::apps::eman_workflow(&grads_core::apps::EmanConfig::default());
    c.bench_function("eman_schedule_three_heuristics", |b| {
        b.iter(|| WorkflowScheduler::default().schedule(&wf, &grid, &nws, &resources))
    });
}

fn bench_lu_end_to_end(c: &mut Criterion) {
    c.bench_function("lu_n48_p4_full_stack", |b| {
        b.iter_batched(
            || {
                let mut gb = GridBuilder::new();
                let cl = gb.cluster("X");
                gb.local_link(cl, 1e8, 1e-4);
                let hs = gb.add_hosts(cl, 4, &HostSpec::with_speed(1e9));
                let mut eng = Engine::new(gb.build().unwrap());
                let cfg = grads_core::apps::LuConfig::full(48, 4);
                launch(&mut eng, "lu", &hs, move |ctx, comm| {
                    let mut local =
                        grads_core::apps::LuLocal::generate(&cfg, comm.rank(), comm.size());
                    grads_core::apps::run_lu_rank(ctx, comm, &cfg, &mut local, None, 0);
                });
                eng
            },
            |eng| eng.run(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_psa_schedule(c: &mut Criterion) {
    use grads_core::apps::psa::{generate, schedule_psa, PsaConfig, PsaStrategy};
    let mut gb = GridBuilder::new();
    let st = gb.cluster("S");
    let storage = gb.add_host(st, &HostSpec::with_speed(1e9));
    let f = gb.cluster("F");
    let mut hosts = gb.add_hosts(f, 8, &HostSpec::with_speed(2e9));
    gb.connect(st, f, 1e7, 0.02);
    let grid = gb.build().unwrap();
    hosts.truncate(8);
    let nws = NwsService::new();
    let wl = generate(&PsaConfig {
        n_tasks: 100,
        ..Default::default()
    });
    c.bench_function("psa_xsufferage_100_tasks", |b| {
        b.iter(|| schedule_psa(&wl, &grid, &nws, &hosts, storage, PsaStrategy::XSufferage))
    });
}

fn bench_dml_parse(c: &mut Criterion) {
    let src = r#"
cluster UTK {
    hosts 4
    speed 933e6
    cores 2
    link 12.5e6 100e-6
}
cluster UIUC {
    hosts 8
    speed 450e6
    link 160e6 20e-6
}
connect UTK UIUC 4e6 0.030
"#;
    c.bench_function("dml_parse_qr_testbed", |b| {
        b.iter(|| grads_core::sim::parse_dml(src).unwrap())
    });
}

fn bench_economy(c: &mut Criterion) {
    use grads_core::sched::{CommodityMarket, Consumer, Producer};
    let producers: Vec<Producer> = (0..16)
        .map(|i| Producer {
            capacity: 10.0 + i as f64,
        })
        .collect();
    let consumers: Vec<Consumer> = (0..64)
        .map(|i| Consumer {
            budget: 10.0 + (i % 13) as f64 * 5.0,
            max_demand: 8.0,
        })
        .collect();
    c.bench_function("economy_market_clear_64_consumers", |b| {
        b.iter(|| {
            let mut m = CommodityMarket::default();
            m.clear(&producers, &consumers, 500, 0.01)
        })
    });
}

fn bench_commfit(c: &mut Criterion) {
    use grads_core::perf::fit_piecewise;
    let samples: Vec<(f64, f64)> = (1..40)
        .map(|i| {
            let bytes = (i as f64) * 5e4;
            let lat = if bytes < 6.4e4 { 0.001 } else { 0.02 };
            (bytes, lat + bytes / 1e8)
        })
        .collect();
    c.bench_function("commfit_piecewise_40_samples", |b| {
        b.iter(|| fit_piecewise(&samples))
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_engine_throughput, bench_messaging, bench_heuristics, bench_mrd,
              bench_forecasting, bench_redistribution, bench_qr_end_to_end,
              bench_workflow_schedule, bench_lu_end_to_end, bench_psa_schedule,
              bench_dml_parse, bench_economy, bench_commfit
}
criterion_main!(benches);
