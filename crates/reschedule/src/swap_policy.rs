//! Swap rescheduling policies and the in-simulation swap rescheduler
//! (§4.2, policies after Sievert & Casanova \[14\]).
//!
//! *"During execution, the contract monitor periodically checks the
//! performance of the machines and swaps slower machines in the active set
//! with faster machines in the inactive set."*

use grads_mpi::SwapWorld;
use grads_nws::NwsService;
use grads_obs::{DecisionAction, DecisionKind, Obs};
use grads_sim::prelude::*;
use parking_lot::Mutex;
use std::sync::Arc;

/// When to swap an active machine for an inactive one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SwapPolicy {
    /// Swap every active machine for which some unused inactive machine is
    /// at least `factor`× faster (greedy pairing, worst active first).
    Greedy {
        /// Required speed advantage of the inactive machine.
        factor: f64,
    },
    /// Swap at most the single worst active machine per decision round.
    WorstFirst {
        /// Required speed advantage of the inactive machine.
        factor: f64,
    },
    /// Move the *whole* active set into one inactive cluster when that
    /// cluster can hold it and its slowest member beats the current
    /// bottleneck by `factor` — what the paper's demonstration did
    /// (*"migrated all three working application processes to the UIUC
    /// cluster"*). Falls back to greedy pairing when no cluster
    /// qualifies.
    PackCluster {
        /// Required speed advantage of the destination cluster's slowest
        /// selected slot over the current active bottleneck.
        factor: f64,
    },
    /// Never swap (baseline).
    Never,
}

/// One planned swap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedSwap {
    /// Logical rank to move.
    pub logical: usize,
    /// Inactive physical slot to move it to.
    pub to_phys: usize,
    /// Effective speed of the current host.
    pub active_speed: f64,
    /// Effective speed of the target host.
    pub inactive_speed: f64,
}

/// Plan swaps given effective speeds of active logical ranks and available
/// inactive slots. Pure decision logic; actuation is separate.
pub fn plan_swaps(
    policy: SwapPolicy,
    active: &[(usize, f64)],
    inactive: &[(usize, f64)],
) -> Vec<PlannedSwap> {
    let factor = match policy {
        SwapPolicy::Never => return Vec::new(),
        SwapPolicy::PackCluster { factor } => {
            // Handled by `plan_pack`; callers that reach here with no
            // cluster structure degrade to greedy pairing.
            factor
        }
        SwapPolicy::Greedy { factor } | SwapPolicy::WorstFirst { factor } => factor,
    };
    // Worst actives first; best inactives first.
    let mut act: Vec<(usize, f64)> = active.to_vec();
    act.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    let mut ina: Vec<(usize, f64)> = inactive.to_vec();
    ina.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut out = Vec::new();
    let mut ii = 0;
    for &(logical, a_speed) in &act {
        if ii >= ina.len() {
            break;
        }
        let (phys, i_speed) = ina[ii];
        if i_speed >= factor * a_speed {
            out.push(PlannedSwap {
                logical,
                to_phys: phys,
                active_speed: a_speed,
                inactive_speed: i_speed,
            });
            ii += 1;
            if matches!(policy, SwapPolicy::WorstFirst { .. }) {
                break;
            }
        } else {
            // Inactives are sorted descending: nothing further helps this
            // or any faster active.
            break;
        }
    }
    out
}

/// Plan a whole-set move: if some cluster holds at least `active.len()`
/// available inactive slots and the slowest of the best such slots beats
/// the current active bottleneck by `factor`, pair every active rank with
/// one slot of that cluster. `inactive_clusters[i]` is the cluster of
/// `inactive[i]`.
pub fn plan_pack(
    factor: f64,
    active: &[(usize, f64)],
    inactive: &[(usize, f64)],
    inactive_clusters: &[ClusterId],
) -> Vec<PlannedSwap> {
    assert_eq!(inactive.len(), inactive_clusters.len());
    let need = active.len();
    if need == 0 {
        return Vec::new();
    }
    let bottleneck = active.iter().map(|&(_, s)| s).fold(f64::INFINITY, f64::min);
    // Group inactive slots per cluster, fastest first.
    let mut clusters: std::collections::BTreeMap<ClusterId, Vec<(usize, f64)>> =
        std::collections::BTreeMap::new();
    for (k, &(phys, speed)) in inactive.iter().enumerate() {
        clusters
            .entry(inactive_clusters[k])
            .or_default()
            .push((phys, speed));
    }
    let mut best: Option<(f64, Vec<(usize, f64)>)> = None;
    for (_, mut slots) in clusters {
        if slots.len() < need {
            continue;
        }
        slots.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        slots.truncate(need);
        let worst = slots.last().map(|&(_, s)| s).unwrap_or(0.0);
        match &best {
            Some((bw, _)) if *bw >= worst => {}
            _ => best = Some((worst, slots)),
        }
    }
    match best {
        Some((worst, slots)) if worst >= factor * bottleneck => active
            .iter()
            .zip(slots)
            .map(|(&(logical, a_speed), (phys, i_speed))| PlannedSwap {
                logical,
                to_phys: phys,
                active_speed: a_speed,
                inactive_speed: i_speed,
            })
            .collect(),
        _ => Vec::new(),
    }
}

/// Run the swap rescheduler inside the simulation: every `period` virtual
/// seconds, read effective speeds from the shared weather service, plan
/// swaps under `policy`, and actuate them on the swap world. Exits when
/// `done()` turns true. Swap actuations are traced as
/// `("swap", logical rank)`.
pub fn run_swap_rescheduler(
    ctx: &mut Ctx,
    sw: &SwapWorld,
    grid: &Grid,
    nws: &Arc<Mutex<NwsService>>,
    policy: SwapPolicy,
    period: f64,
    done: &(dyn Fn() -> bool + Send + Sync),
) {
    run_swap_rescheduler_obs(ctx, sw, grid, nws, policy, period, done, &Obs::disabled());
}

/// [`run_swap_rescheduler`] with an observability sink: identical swap
/// behavior (the plain variant delegates here with a disabled handle),
/// plus `swap.*` counters (decision rounds, planned and actuated swaps)
/// and `Decision`/`ActuationStarted` events with `DecisionAction::Swap`
/// stamped at `ctx.now()`. Swap completion happens asynchronously at the
/// application's next swap point, so no `ActuationComplete` is recorded
/// here.
#[allow(clippy::too_many_arguments)]
pub fn run_swap_rescheduler_obs(
    ctx: &mut Ctx,
    sw: &SwapWorld,
    grid: &Grid,
    nws: &Arc<Mutex<NwsService>>,
    policy: SwapPolicy,
    period: f64,
    done: &(dyn Fn() -> bool + Send + Sync),
    obs: &Obs,
) {
    while !done() {
        ctx.sleep(period);
        let (active, inactive) = {
            let n = nws.lock();
            // Active hosts carry one app rank, which the NWS probe sees;
            // discount it so busy-but-unloaded hosts are not mistaken for
            // slow ones (that mistake makes the rescheduler thrash).
            let active: Vec<(usize, f64)> = (0..sw.n_active)
                .map(|l| {
                    let host = sw.host_of_logical(l);
                    let h = grid.host(host);
                    let probed = n.forecast_cpu_or_idle(host);
                    let avail = grads_nws::app_availability_from_probe(h.cores, probed);
                    (l, h.speed * avail)
                })
                .collect();
            let inactive: Vec<(usize, f64)> = sw
                .available_inactive()
                .into_iter()
                .map(|p| (p, n.effective_speed(grid, sw.phys_hosts[p])))
                .collect();
            (active, inactive)
        };
        let planned = match policy {
            SwapPolicy::PackCluster { factor } => {
                let clusters: Vec<ClusterId> = {
                    let avail = sw.available_inactive();
                    avail
                        .iter()
                        .map(|&p| grid.host(sw.phys_hosts[p]).cluster)
                        .collect()
                };
                plan_pack(factor, &active, &inactive, &clusters)
            }
            _ => plan_swaps(policy, &active, &inactive),
        };
        obs.counter_add("swap.rounds", 1);
        obs.counter_add("swap.planned", planned.len() as u64);
        if !planned.is_empty() {
            obs.event(
                ctx.now(),
                DecisionKind::Decision {
                    action: DecisionAction::Swap,
                },
            );
        }
        for s in planned {
            if sw.request_swap(s.logical, s.to_phys).is_ok() {
                ctx.trace("swap", s.logical as f64);
                obs.counter_add("swap.actuated", 1);
                obs.event(
                    ctx.now(),
                    DecisionKind::ActuationStarted {
                        action: DecisionAction::Swap,
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_policy_plans_nothing() {
        let p = plan_swaps(SwapPolicy::Never, &[(0, 1.0)], &[(1, 100.0)]);
        assert!(p.is_empty());
    }

    #[test]
    fn greedy_pairs_worst_active_with_best_inactive() {
        let active = vec![(0, 10.0), (1, 2.0), (2, 8.0)];
        let inactive = vec![(5, 9.0), (6, 20.0)];
        // Worst active (logical 1, speed 2) gets the best inactive (20);
        // with factor 1.5 the second pairing (9 vs 1.5×8 = 12) fails.
        let p = plan_swaps(SwapPolicy::Greedy { factor: 1.5 }, &active, &inactive);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].logical, 1);
        assert_eq!(p[0].to_phys, 6);
        // With a looser factor both pairings qualify.
        let p2 = plan_swaps(SwapPolicy::Greedy { factor: 1.01 }, &active, &inactive);
        assert_eq!(p2.len(), 2);
        assert_eq!(p2[1].logical, 2);
        assert_eq!(p2[1].to_phys, 5);
    }

    #[test]
    fn factor_threshold_blocks_marginal_swaps() {
        let active = vec![(0, 10.0)];
        let inactive = vec![(1, 12.0)];
        assert!(plan_swaps(SwapPolicy::Greedy { factor: 1.5 }, &active, &inactive).is_empty());
        assert_eq!(
            plan_swaps(SwapPolicy::Greedy { factor: 1.1 }, &active, &inactive).len(),
            1
        );
    }

    #[test]
    fn worst_first_limits_to_one() {
        let active = vec![(0, 1.0), (1, 1.0)];
        let inactive = vec![(2, 10.0), (3, 10.0)];
        let p = plan_swaps(SwapPolicy::WorstFirst { factor: 2.0 }, &active, &inactive);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].logical, 0);
    }

    #[test]
    fn pack_moves_whole_set_when_cluster_fits() {
        // Actives bottlenecked at 150; cluster B offers 3 slots of 450.
        let active = vec![(0, 550.0), (1, 150.0), (2, 550.0)];
        let inactive = vec![(3, 450.0), (4, 450.0), (5, 450.0), (6, 900.0)];
        let clusters = vec![ClusterId(1), ClusterId(1), ClusterId(1), ClusterId(2)];
        let p = plan_pack(2.0, &active, &inactive, &clusters);
        assert_eq!(p.len(), 3, "{p:?}");
        let targets: Vec<usize> = p.iter().map(|s| s.to_phys).collect();
        assert!(targets.iter().all(|t| [3, 4, 5].contains(t)));
        let logicals: Vec<usize> = p.iter().map(|s| s.logical).collect();
        assert_eq!(
            {
                let mut l = logicals.clone();
                l.sort_unstable();
                l
            },
            vec![0, 1, 2]
        );
    }

    #[test]
    fn pack_declines_when_no_cluster_fits() {
        // Only two slots per cluster for three actives.
        let active = vec![(0, 100.0), (1, 100.0), (2, 100.0)];
        let inactive = vec![(3, 900.0), (4, 900.0), (5, 900.0), (6, 900.0)];
        let clusters = vec![ClusterId(1), ClusterId(1), ClusterId(2), ClusterId(2)];
        assert!(plan_pack(2.0, &active, &inactive, &clusters).is_empty());
    }

    #[test]
    fn pack_declines_when_cluster_too_slow() {
        let active = vec![(0, 400.0), (1, 400.0)];
        let inactive = vec![(2, 450.0), (3, 450.0)];
        let clusters = vec![ClusterId(1), ClusterId(1)];
        // 450 < 2.0 × 400: not worth moving everyone.
        assert!(plan_pack(2.0, &active, &inactive, &clusters).is_empty());
        // A looser factor accepts.
        assert_eq!(plan_pack(1.1, &active, &inactive, &clusters).len(), 2);
    }

    #[test]
    fn no_inactive_means_no_swaps() {
        let p = plan_swaps(SwapPolicy::Greedy { factor: 1.1 }, &[(0, 1.0)], &[]);
        assert!(p.is_empty());
    }

    #[test]
    fn greedy_respects_double_check_above() {
        // From greedy_pairs test: with factor 1.5 only the first pairing
        // qualifies (9 < 1.5 * 8).
        let active = vec![(0, 10.0), (1, 2.0), (2, 8.0)];
        let inactive = vec![(5, 9.0), (6, 20.0)];
        let p = plan_swaps(SwapPolicy::Greedy { factor: 1.5 }, &active, &inactive);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].logical, 1);
    }
}
