//! # grads-reschedule — migration and swap rescheduling
//!
//! The two §4 rescheduling approaches:
//!
//! * [`migrate`] — stop/migrate/restart decisions: remaining-time
//!   prediction on current vs. candidate resources against migration
//!   overhead, with the paper's worst-case-overhead policy (which produces
//!   the documented wrong decision at N = 8000), forced modes for
//!   comparison runs, migration-on-request, and opportunistic rescheduling;
//! * [`swap_policy`] — process-swapping policies (greedy / worst-first /
//!   never) and the periodic in-simulation swap rescheduler.
//!
//! Both deciders have `_obs` variants that stream `grads-obs` decision
//! events and `reschedule.*`/`swap.*` counters without changing behavior,
//! so the §3 monitor → rescheduler path can be profiled end-to-end.

#![warn(missing_docs)]

pub mod migrate;
pub mod swap_policy;

pub use migrate::{
    opportunistic_check, MigrationDecision, MigrationRescheduler, OverheadPolicy, Reschedulable,
    ReschedulerMode,
};
pub use swap_policy::{
    plan_pack, plan_swaps, run_swap_rescheduler, run_swap_rescheduler_obs, PlannedSwap, SwapPolicy,
};
