//! # grads-reschedule — migration and swap rescheduling
//!
//! The two §4 rescheduling approaches:
//!
//! * [`migrate`] — stop/migrate/restart decisions: remaining-time
//!   prediction on current vs. candidate resources against migration
//!   overhead, with the paper's worst-case-overhead policy (which produces
//!   the documented wrong decision at N = 8000), forced modes for
//!   comparison runs, migration-on-request, and opportunistic rescheduling;
//! * [`swap_policy`] — process-swapping policies (greedy / worst-first /
//!   never) and the periodic in-simulation swap rescheduler.

pub mod migrate;
pub mod swap_policy;

pub use migrate::{
    opportunistic_check, MigrationDecision, MigrationRescheduler, OverheadPolicy, Reschedulable,
    ReschedulerMode,
};
pub use swap_policy::{plan_swaps, run_swap_rescheduler, PlannedSwap, SwapPolicy};
