//! Stop/migrate/restart rescheduling decisions (§4.1).
//!
//! *"The rescheduler uses the COP's performance model to predict remaining
//! execution time on the new resources, remaining execution time on the
//! current resources, and the overhead for migration and determines if
//! migration is desirable."*
//!
//! Two overhead policies are provided. `Modeled` trusts the application's
//! own estimate of checkpoint write + read + restart costs; `WorstCase(c)`
//! substitutes an experimentally-determined pessimistic constant — the
//! paper's rescheduler assumed 900 s where the actual cost was ≈420 s,
//! producing the wrong "don't migrate" decision at matrix size 8000 that
//! Figure 3 reports. Both are reproduced here.

use grads_nws::ForecastSource;
use grads_obs::Obs;
use grads_sim::prelude::*;

/// How the rescheduler estimates migration overhead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OverheadPolicy {
    /// Assume a fixed worst-case rescheduling cost (seconds).
    WorstCase(f64),
    /// Use the application model's own overhead estimate.
    Modeled,
}

/// Operating mode (§4.1.2): default decides; the forced modes exist so
/// experiments can compare both branches of every decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReschedulerMode {
    /// Migrate iff predicted benefit exceeds the threshold.
    Default,
    /// Always migrate (inverts the default decision for comparison runs).
    ForceMigrate,
    /// Never migrate.
    ForceStay,
}

/// A fully-explained migration decision.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationDecision {
    /// The verdict.
    pub migrate: bool,
    /// Predicted remaining time on the current resources.
    pub remaining_current: f64,
    /// Predicted remaining time on the candidate resources.
    pub remaining_new: f64,
    /// Overhead figure actually used (after the policy).
    pub overhead_used: f64,
    /// Overhead the model predicted (before the policy).
    pub overhead_modeled: f64,
    /// `remaining_current − (remaining_new + overhead_used)`.
    pub benefit: f64,
    /// Candidate hosts evaluated.
    pub candidate_hosts: Vec<HostId>,
}

/// What the rescheduler needs to know about a running, migratable
/// application (supplied by its COP: performance model + progress).
///
/// Forecasts arrive through [`ForecastSource`], so one monitor poll can
/// capture a `ForecastSnapshot` and evaluate every candidate against it
/// instead of re-running the NWS ensemble per candidate per term — the
/// live `NwsService` still works anywhere a source is expected, with
/// bit-identical decisions either way.
pub trait Reschedulable: Send + Sync {
    /// Predicted remaining execution time on the current resources, given
    /// current weather.
    fn remaining_current(&self, grid: &Grid, src: &dyn ForecastSource) -> f64;
    /// Predicted remaining execution time if restarted on `hosts`.
    fn remaining_on(&self, hosts: &[HostId], grid: &Grid, src: &dyn ForecastSource) -> f64;
    /// Modeled migration overhead onto `hosts`: checkpoint write, restart
    /// bookkeeping, and checkpoint read/redistribution.
    fn migration_overhead(&self, hosts: &[HostId], grid: &Grid, src: &dyn ForecastSource) -> f64;
    /// Hosts the application currently occupies.
    fn current_hosts(&self) -> Vec<HostId>;
}

/// The stop/restart rescheduler.
#[derive(Debug, Clone)]
pub struct MigrationRescheduler {
    /// Overhead estimation policy.
    pub overhead: OverheadPolicy,
    /// Operating mode.
    pub mode: ReschedulerMode,
    /// Minimum predicted benefit (seconds) required to migrate.
    pub min_benefit: f64,
}

impl Default for MigrationRescheduler {
    fn default() -> Self {
        MigrationRescheduler {
            overhead: OverheadPolicy::Modeled,
            mode: ReschedulerMode::Default,
            min_benefit: 0.0,
        }
    }
}

impl MigrationRescheduler {
    /// Evaluate migrating `app` onto one candidate host set.
    pub fn evaluate(
        &self,
        app: &dyn Reschedulable,
        candidate: &[HostId],
        grid: &Grid,
        src: &dyn ForecastSource,
    ) -> MigrationDecision {
        let remaining_current = app.remaining_current(grid, src);
        let remaining_new = app.remaining_on(candidate, grid, src);
        let overhead_modeled = app.migration_overhead(candidate, grid, src);
        let overhead_used = match self.overhead {
            OverheadPolicy::WorstCase(c) => c,
            OverheadPolicy::Modeled => overhead_modeled,
        };
        let benefit = remaining_current - (remaining_new + overhead_used);
        let migrate = match self.mode {
            ReschedulerMode::Default => benefit > self.min_benefit,
            ReschedulerMode::ForceMigrate => true,
            ReschedulerMode::ForceStay => false,
        };
        MigrationDecision {
            migrate,
            remaining_current,
            remaining_new,
            overhead_used,
            overhead_modeled,
            benefit,
            candidate_hosts: candidate.to_vec(),
        }
    }

    /// Evaluate several candidate host sets and return the decision for
    /// the highest-benefit one (or, when nothing clears the threshold, the
    /// best-available decision with `migrate = false` under default mode).
    pub fn decide_best(
        &self,
        app: &dyn Reschedulable,
        candidates: &[Vec<HostId>],
        grid: &Grid,
        src: &dyn ForecastSource,
    ) -> Option<MigrationDecision> {
        candidates
            .iter()
            .map(|c| self.evaluate(app, c, grid, src))
            .max_by(|a, b| a.benefit.total_cmp(&b.benefit))
    }

    /// [`MigrationRescheduler::decide_best`] with an observability sink:
    /// identical decision, plus `reschedule.*` counters (candidate sets
    /// evaluated, migrate/stay verdicts) and gauges describing the winning
    /// decision's prediction terms (§4.1's remaining-current vs.
    /// remaining-new + overhead comparison). Pure decision logic carries no
    /// virtual clock, so this records no timed events — callers with a
    /// `Ctx` stamp the surrounding `Decision`/actuation events themselves.
    pub fn decide_best_obs(
        &self,
        app: &dyn Reschedulable,
        candidates: &[Vec<HostId>],
        grid: &Grid,
        src: &dyn ForecastSource,
        obs: &Obs,
    ) -> Option<MigrationDecision> {
        obs.counter_add("reschedule.candidate_sets", candidates.len() as u64);
        let best = self.decide_best(app, candidates, grid, src);
        if let Some(d) = &best {
            obs.counter_add(
                if d.migrate {
                    "reschedule.decisions_migrate"
                } else {
                    "reschedule.decisions_stay"
                },
                1,
            );
            obs.gauge_set("reschedule.last_benefit", d.benefit);
            obs.gauge_set("reschedule.last_remaining_current", d.remaining_current);
            obs.gauge_set("reschedule.last_remaining_new", d.remaining_new);
            obs.gauge_set("reschedule.last_overhead_used", d.overhead_used);
        }
        best
    }
}

/// Opportunistic rescheduling (§4.1.1): when an application finishes and
/// frees resources, check whether any still-running application would
/// benefit from moving onto them.
pub fn opportunistic_check(
    rescheduler: &MigrationRescheduler,
    apps: &[&dyn Reschedulable],
    freed: &[HostId],
    grid: &Grid,
    src: &dyn ForecastSource,
) -> Option<(usize, MigrationDecision)> {
    let mut best: Option<(usize, MigrationDecision)> = None;
    for (i, app) in apps.iter().enumerate() {
        // Candidate set: freed resources combined with what the app holds
        // is out of scope here — the paper moves the app onto the freed
        // set.
        let d = rescheduler.evaluate(*app, freed, grid, src);
        if !d.migrate {
            continue;
        }
        match &best {
            Some((_, b)) if b.benefit >= d.benefit => {}
            _ => best = Some((i, d)),
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use grads_nws::NwsService;

    /// Synthetic app: fixed work remaining, perfectly parallel over host
    /// speeds; overhead = fixed model value.
    struct FakeApp {
        work: f64,
        current: Vec<HostId>,
        overhead: f64,
    }

    impl Reschedulable for FakeApp {
        fn remaining_current(&self, grid: &Grid, src: &dyn ForecastSource) -> f64 {
            self.remaining_on(&self.current, grid, src)
        }
        fn remaining_on(&self, hosts: &[HostId], grid: &Grid, src: &dyn ForecastSource) -> f64 {
            let speed: f64 = hosts.iter().map(|&h| src.effective_speed(grid, h)).sum();
            self.work / speed
        }
        fn migration_overhead(&self, _: &[HostId], _: &Grid, _: &dyn ForecastSource) -> f64 {
            self.overhead
        }
        fn current_hosts(&self) -> Vec<HostId> {
            self.current.clone()
        }
    }

    fn setup() -> Grid {
        use grads_sim::topology::{GridBuilder, HostSpec};
        let mut b = GridBuilder::new();
        let a = b.cluster("A");
        b.add_hosts(a, 2, &HostSpec::with_speed(1e9));
        let c = b.cluster("B");
        b.add_hosts(c, 4, &HostSpec::with_speed(8e8));
        b.connect(a, c, 1e7, 0.02);
        b.build().unwrap()
    }

    #[test]
    fn migrates_when_benefit_clears_overhead() {
        let grid = setup();
        let mut nws = NwsService::new();
        // Current hosts are heavily loaded.
        for _ in 0..20 {
            nws.observe_cpu(HostId(0), 0.2);
            nws.observe_cpu(HostId(1), 0.2);
        }
        let app = FakeApp {
            work: 4e11, // 1000 s at 0.4 Gflop/s effective, 125 s on B
            current: vec![HostId(0), HostId(1)],
            overhead: 100.0,
        };
        let r = MigrationRescheduler::default();
        let cand: Vec<HostId> = (2..6).map(HostId).collect();
        let d = r.evaluate(&app, &cand, &grid, &nws);
        assert!(d.migrate, "benefit {} should trigger migration", d.benefit);
        assert!(d.remaining_current > d.remaining_new + d.overhead_used);
    }

    #[test]
    fn stays_when_overhead_dominates() {
        let grid = setup();
        let nws = NwsService::new();
        let app = FakeApp {
            work: 2e9, // 1 s remaining: nothing is worth 100 s overhead
            current: vec![HostId(0), HostId(1)],
            overhead: 100.0,
        };
        let r = MigrationRescheduler::default();
        let cand: Vec<HostId> = (2..6).map(HostId).collect();
        let d = r.evaluate(&app, &cand, &grid, &nws);
        assert!(!d.migrate);
    }

    #[test]
    fn worst_case_policy_reproduces_wrong_decision() {
        // The Figure 3 story at N = 8000: modeled (actual) overhead ~420 s
        // would justify migration, but the pessimistic 900 s assumption
        // kills it.
        let grid = setup();
        let mut nws = NwsService::new();
        for _ in 0..20 {
            nws.observe_cpu(HostId(0), 0.3);
            nws.observe_cpu(HostId(1), 0.3);
        }
        let app = FakeApp {
            work: 6e11, // 1000 s on loaded A, ~188 s on B
            current: vec![HostId(0), HostId(1)],
            overhead: 420.0,
        };
        let cand: Vec<HostId> = (2..6).map(HostId).collect();
        let modeled = MigrationRescheduler {
            overhead: OverheadPolicy::Modeled,
            ..Default::default()
        };
        let pessimist = MigrationRescheduler {
            overhead: OverheadPolicy::WorstCase(900.0),
            ..Default::default()
        };
        let dm = modeled.evaluate(&app, &cand, &grid, &nws);
        let dp = pessimist.evaluate(&app, &cand, &grid, &nws);
        assert!(dm.migrate, "modeled overhead should migrate: {dm:?}");
        assert!(!dp.migrate, "worst-case assumption should refuse: {dp:?}");
        assert_eq!(dp.overhead_used, 900.0);
        assert_eq!(dp.overhead_modeled, 420.0);
    }

    #[test]
    fn forced_modes_override() {
        let grid = setup();
        let nws = NwsService::new();
        let app = FakeApp {
            work: 1e9,
            current: vec![HostId(0)],
            overhead: 1e6,
        };
        let cand = vec![HostId(2)];
        let force_m = MigrationRescheduler {
            mode: ReschedulerMode::ForceMigrate,
            ..Default::default()
        };
        let force_s = MigrationRescheduler {
            mode: ReschedulerMode::ForceStay,
            ..Default::default()
        };
        assert!(force_m.evaluate(&app, &cand, &grid, &nws).migrate);
        let mut loaded_nws = NwsService::new();
        for _ in 0..10 {
            loaded_nws.observe_cpu(HostId(0), 0.01);
        }
        assert!(!force_s.evaluate(&app, &cand, &grid, &loaded_nws).migrate);
    }

    #[test]
    fn decide_best_picks_highest_benefit() {
        let grid = setup();
        let mut nws = NwsService::new();
        for _ in 0..20 {
            nws.observe_cpu(HostId(0), 0.1);
        }
        let app = FakeApp {
            work: 1e12,
            current: vec![HostId(0)],
            overhead: 10.0,
        };
        let r = MigrationRescheduler::default();
        let candidates = vec![
            vec![HostId(2)],                        // 0.8 Gflop/s
            (2..6).map(HostId).collect::<Vec<_>>(), // 3.2 Gflop/s
            vec![HostId(1)],                        // 1.0 Gflop/s
        ];
        let d = r.decide_best(&app, &candidates, &grid, &nws).unwrap();
        assert_eq!(d.candidate_hosts.len(), 4);
        assert!(d.migrate);
    }

    #[test]
    fn opportunistic_picks_the_neediest_app() {
        let grid = setup();
        let mut nws = NwsService::new();
        for _ in 0..20 {
            nws.observe_cpu(HostId(0), 0.1);
            nws.observe_cpu(HostId(1), 1.0);
        }
        let starved = FakeApp {
            work: 1e12,
            current: vec![HostId(0)],
            overhead: 50.0,
        };
        let healthy = FakeApp {
            work: 1e12,
            current: vec![HostId(1)],
            overhead: 50.0,
        };
        let freed: Vec<HostId> = (2..6).map(HostId).collect();
        let r = MigrationRescheduler::default();
        let apps: Vec<&dyn Reschedulable> = vec![&healthy, &starved];
        let (idx, d) = opportunistic_check(&r, &apps, &freed, &grid, &nws).unwrap();
        assert_eq!(idx, 1, "the starved app should win the freed resources");
        assert!(d.migrate);
    }

    #[test]
    fn min_benefit_threshold_raises_the_bar() {
        let grid = setup();
        let nws = NwsService::new();
        let app = FakeApp {
            work: 2e12, // 1000 s on current single host, 625 s on candidate
            current: vec![HostId(0)],
            overhead: 0.0,
        };
        // Candidate: cluster B single host = 0.8 Gflop/s -> 2500 s: worse.
        // Use both A hosts? current HostId(0) only; candidate HostId(0),(1)
        // halves the time: benefit 500 s.
        let cand = vec![HostId(0), HostId(1)];
        let lenient = MigrationRescheduler::default();
        let strict = MigrationRescheduler {
            min_benefit: 2000.0,
            ..Default::default()
        };
        assert!(lenient.evaluate(&app, &cand, &grid, &nws).migrate);
        assert!(!strict.evaluate(&app, &cand, &grid, &nws).migrate);
    }
}
