//! # grads-mpi — simulated MPI over the grid emulator
//!
//! The message-passing substrate the paper's applications (ScaLAPACK QR,
//! the N-body solver) are written against:
//!
//! * [`comm`] — communicators with eager/rendezvous point-to-point
//!   semantics, non-overtaking delivery, and binomial-tree collectives;
//! * [`world`] — `mpirun`-style launching plus the per-rank profiling
//!   counters the contract monitor's sensors read;
//! * [`dist`] — block-cyclic distributions and the N→M redistribution
//!   plans SRS uses at restart;
//! * [`swap`] — the §4.2 process-swapping architecture: active/inactive
//!   sets, logical-rank communication hijacking, swap points, and state
//!   handoff.

pub mod collectives_ext;
pub mod comm;
pub mod dist;
pub mod swap;
pub mod world;

pub use comm::{Comm, Mapping, DEFAULT_EAGER_THRESHOLD, INTERNAL_TAG_BASE};
pub use dist::{BlockCyclic, RedistEntry};
pub use swap::{launch_swap_world, launch_swap_world_traced, run_swappable, SwapError, SwapWorld};
pub use world::{
    host_labels, launch, launch_at, launch_at_traced, launch_from, launch_from_traced,
    launch_traced, RankStats, World,
};
