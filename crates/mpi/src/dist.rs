//! Block-cyclic data distributions and N→M redistribution plans.
//!
//! ScaLAPACK distributes matrices block-cyclically; the SRS checkpointing
//! library *"can transparently handle the redistribution of certain data
//! distributions (e.g., block cyclic) between different numbers of
//! processors (i.e., N to M processors)"* (§4.1.1). This module provides
//! the index algebra both for the QR application's column distribution and
//! for SRS restart-time redistribution.

/// A 1-D block-cyclic distribution of `n` elements over `p` ranks with
/// blocks of `block` elements: global block `b` (elements
/// `b·block .. (b+1)·block`) lives on rank `b mod p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCyclic {
    /// Global element count.
    pub n: usize,
    /// Block length.
    pub block: usize,
    /// Number of ranks.
    pub p: usize,
}

impl BlockCyclic {
    /// New distribution; `block` and `p` must be nonzero.
    pub fn new(n: usize, block: usize, p: usize) -> Self {
        assert!(block > 0, "block must be positive");
        assert!(p > 0, "rank count must be positive");
        BlockCyclic { n, block, p }
    }

    /// Rank owning global index `g`.
    pub fn owner(&self, g: usize) -> usize {
        debug_assert!(g < self.n);
        (g / self.block) % self.p
    }

    /// Local index of global index `g` on its owner.
    pub fn local_index(&self, g: usize) -> usize {
        debug_assert!(g < self.n);
        let b = g / self.block;
        (b / self.p) * self.block + g % self.block
    }

    /// Global index of local index `l` on `rank`.
    pub fn global_index(&self, rank: usize, l: usize) -> usize {
        debug_assert!(rank < self.p);
        let lb = l / self.block;
        let gb = lb * self.p + rank;
        gb * self.block + l % self.block
    }

    /// Number of elements stored on `rank`.
    pub fn local_len(&self, rank: usize) -> usize {
        debug_assert!(rank < self.p);
        let cycle = self.block * self.p;
        let full_cycles = self.n / cycle;
        let rem = self.n % cycle;
        let extra = rem.saturating_sub(rank * self.block).min(self.block);
        full_cycles * self.block + extra
    }

    /// Iterator over the global indices owned by `rank`, ascending.
    pub fn globals_of(&self, rank: usize) -> impl Iterator<Item = usize> + '_ {
        let me = *self;
        (0..self.local_len(rank)).map(move |l| me.global_index(rank, l))
    }

    /// Compute the redistribution plan from `self` to `to` (same `n`,
    /// possibly different block size and rank count). Returns, for each
    /// `(src_rank, dst_rank)` pair with traffic, the list of contiguous
    /// global ranges `(start, len)` that move between them, in ascending
    /// global order.
    pub fn redistribute_plan(&self, to: &BlockCyclic) -> Vec<RedistEntry> {
        assert_eq!(self.n, to.n, "redistribution must preserve length");
        let mut map: Vec<RedistEntry> = Vec::new();
        let mut g = 0usize;
        while g < self.n {
            // The segment ends at the next block boundary of either
            // distribution (ownership constant inside it).
            let src_end = (g / self.block + 1) * self.block;
            let dst_end = (g / to.block + 1) * to.block;
            let end = src_end.min(dst_end).min(self.n);
            let (src, dst) = (self.owner(g), to.owner(g));
            match map.iter_mut().find(|e| e.src == src && e.dst == dst) {
                Some(e) => {
                    // Merge with the previous range when contiguous.
                    if let Some(last) = e.ranges.last_mut() {
                        if last.0 + last.1 == g {
                            last.1 += end - g;
                        } else {
                            e.ranges.push((g, end - g));
                        }
                    }
                }
                None => map.push(RedistEntry {
                    src,
                    dst,
                    ranges: vec![(g, end - g)],
                }),
            }
            g = end;
        }
        map
    }
}

/// Traffic between one (src, dst) rank pair in a redistribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedistEntry {
    /// Source rank in the old distribution.
    pub src: usize,
    /// Destination rank in the new distribution.
    pub dst: usize,
    /// Contiguous global ranges `(start, len)`, ascending.
    pub ranges: Vec<(usize, usize)>,
}

impl RedistEntry {
    /// Total elements moved by this entry.
    pub fn total(&self) -> usize {
        self.ranges.iter().map(|&(_, l)| l).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_and_local_round_trip() {
        let d = BlockCyclic::new(100, 8, 3);
        for g in 0..d.n {
            let r = d.owner(g);
            let l = d.local_index(g);
            assert_eq!(d.global_index(r, l), g, "g = {g}");
        }
    }

    #[test]
    fn local_lens_sum_to_n() {
        for (n, b, p) in [(100, 8, 3), (64, 64, 4), (7, 2, 4), (1, 1, 1), (33, 5, 7)] {
            let d = BlockCyclic::new(n, b, p);
            let total: usize = (0..p).map(|r| d.local_len(r)).sum();
            assert_eq!(total, n, "n={n} b={b} p={p}");
        }
    }

    #[test]
    fn globals_of_matches_owner() {
        let d = BlockCyclic::new(50, 4, 3);
        for r in 0..d.p {
            for g in d.globals_of(r) {
                assert_eq!(d.owner(g), r);
            }
        }
    }

    #[test]
    fn single_rank_owns_everything() {
        let d = BlockCyclic::new(17, 4, 1);
        assert_eq!(d.local_len(0), 17);
        for g in 0..17 {
            assert_eq!(d.owner(g), 0);
            assert_eq!(d.local_index(g), g);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn redistribution_covers_everything_once() {
        let from = BlockCyclic::new(100, 8, 3);
        let to = BlockCyclic::new(100, 5, 7);
        let plan = from.redistribute_plan(&to);
        let mut seen = [false; 100];
        for e in &plan {
            for &(g0, len) in &e.ranges {
                for g in g0..g0 + len {
                    assert!(!seen[g], "duplicate coverage of {g}");
                    seen[g] = true;
                    assert_eq!(from.owner(g), e.src);
                    assert_eq!(to.owner(g), e.dst);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "full coverage");
    }

    #[test]
    fn identity_redistribution_is_diagonal() {
        let d = BlockCyclic::new(64, 4, 4);
        let plan = d.redistribute_plan(&d);
        for e in &plan {
            assert_eq!(e.src, e.dst);
        }
        let total: usize = plan.iter().map(|e| e.total()).sum();
        assert_eq!(total, 64);
    }

    #[test]
    fn n_to_m_shrink_and_grow() {
        let from = BlockCyclic::new(96, 8, 4);
        let to = BlockCyclic::new(96, 8, 6);
        let plan = from.redistribute_plan(&to);
        let total: usize = plan.iter().map(|e| e.total()).sum();
        assert_eq!(total, 96);
        // Growing the rank set must spread data to the new ranks.
        assert!(plan.iter().any(|e| e.dst >= 4));
    }

    #[test]
    fn ranges_are_merged_when_contiguous() {
        // Same block size, same p: each rank's data stays, and the plan
        // should merge each block... blocks of one rank are not globally
        // contiguous, so expect one range per block.
        let d = BlockCyclic::new(32, 4, 2);
        let plan = d.redistribute_plan(&d);
        let e0 = plan.iter().find(|e| e.src == 0).unwrap();
        assert_eq!(e0.ranges.len(), 4); // blocks 0,2,4,6
        assert!(e0.ranges.iter().all(|&(_, l)| l == 4));
    }
}
