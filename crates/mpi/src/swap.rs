//! MPI process swapping (§4.2, after Sievert & Casanova).
//!
//! The application is launched over `n_phys` machines but computes on only
//! `n_active` of them (the *active set*); the rest idle in the *inactive
//! set*. User communication is addressed to **logical** ranks `0..n_active`
//! and resolved through a shared mapping, so when the rescheduler swaps a
//! slow active machine for a fast inactive one, peers transparently start
//! talking to the new host. Swaps happen at application-defined swap points
//! (iteration boundaries): the outgoing process ships its logical rank's
//! state to the incoming process and joins the inactive set.
//!
//! This mechanism trades flexibility for cost: *"the processor pool is
//! limited to the original set of machines, and the data allocation can not
//! be modified"* — but no restart, no checkpoint reads across the wide
//! area, and almost no application changes.

use crate::comm::{Comm, Mapping, DEFAULT_EAGER_THRESHOLD, INTERNAL_TAG_BASE};
use crate::world::{host_labels, next_world_id, RankStats};
use grads_obs::{MsgKind, RankState, Recorder, WorldTag};
use grads_sim::prelude::*;
use grads_sim::process::mail_key;
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

const SWAP_NS: u64 = 0x5357_4150; // "SWAP"

/// Recorder tag for swap-state handoff messages. Both halves key on the
/// *destination* slot (the receiver does not know who hands over to it),
/// which is unambiguous: activations of one slot are strictly sequential.
const SWAP_HANDOFF_TAG: u64 = INTERNAL_TAG_BASE + 32;

/// Message delivered to a physical process's activation mailbox.
enum SwapMsg {
    /// Take over a logical rank, with its application state.
    Takeover {
        logical: usize,
        state: Box<dyn Any + Send>,
    },
    /// The application is complete; exit.
    Shutdown,
}

/// Errors from swap requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwapError {
    /// The logical rank does not exist.
    BadLogical(usize),
    /// The requested target is not currently inactive.
    TargetNotInactive(usize),
    /// The logical rank already has a pending swap.
    AlreadyPending(usize),
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::BadLogical(l) => write!(f, "no such logical rank {l}"),
            SwapError::TargetNotInactive(p) => write!(f, "physical process {p} is not inactive"),
            SwapError::AlreadyPending(l) => {
                write!(f, "logical rank {l} already has a pending swap")
            }
        }
    }
}

impl std::error::Error for SwapError {}

struct SwapShared {
    /// logical rank -> physical slot currently serving it.
    logical_to_phys: Vec<usize>,
    /// physical slot -> logical rank (None = inactive).
    phys_role: Vec<Option<usize>>,
    /// physical slot with a pending swap-out -> target physical slot.
    pending: HashMap<usize, usize>,
    /// Physical slots reserved as targets of pending swaps.
    reserved: Vec<bool>,
    /// Number of swaps completed.
    swaps_done: u64,
}

/// Handle to a swap-enabled world, shared by workers, the contract monitor
/// and the swap rescheduler.
#[derive(Clone)]
pub struct SwapWorld {
    /// World id (namespaces all mailbox keys).
    pub world_id: u64,
    /// Host of each physical slot.
    pub phys_hosts: Arc<Vec<HostId>>,
    /// Active-set size.
    pub n_active: usize,
    shared: Arc<Mutex<SwapShared>>,
    /// Per-physical-slot profiling stats.
    pub stats: Arc<Vec<Arc<Mutex<RankStats>>>>,
    /// Flight recorder; one track per *physical slot* (logical ranks move
    /// between slots, so slot timelines are the stable view).
    rec: Recorder,
    wtag: WorldTag,
}

impl SwapWorld {
    /// Create a swap world over `phys_hosts`, computing on the first
    /// `n_active` slots initially.
    pub fn new(phys_hosts: Vec<HostId>, n_active: usize) -> Self {
        assert!(n_active >= 1, "need at least one active process");
        assert!(
            n_active <= phys_hosts.len(),
            "active set larger than the machine pool"
        );
        let n = phys_hosts.len();
        let stats = (0..n)
            .map(|_| Arc::new(Mutex::new(RankStats::default())))
            .collect();
        SwapWorld {
            world_id: next_world_id(),
            phys_hosts: Arc::new(phys_hosts),
            n_active,
            shared: Arc::new(Mutex::new(SwapShared {
                logical_to_phys: (0..n_active).collect(),
                phys_role: (0..n).map(|p| (p < n_active).then_some(p)).collect(),
                pending: HashMap::new(),
                reserved: vec![false; n],
                swaps_done: 0,
            })),
            stats: Arc::new(stats),
            rec: Recorder::disabled(),
            wtag: WorldTag::NONE,
        }
    }

    /// Attach a flight recorder to every slot of this world. Usually done
    /// by [`launch_swap_world_traced`], which also registers the tracks.
    pub fn set_recorder(&mut self, rec: Recorder, wtag: WorldTag) {
        self.rec = rec;
        self.wtag = wtag;
    }

    /// The attached flight recorder and world tag (disabled by default).
    pub fn recorder(&self) -> (&Recorder, WorldTag) {
        (&self.rec, self.wtag)
    }

    /// Total machine-pool size.
    pub fn n_phys(&self) -> usize {
        self.phys_hosts.len()
    }

    /// Logical rank a physical slot currently serves, if active.
    pub fn role_of(&self, phys: usize) -> Option<usize> {
        self.shared.lock().phys_role[phys]
    }

    /// Physical slot currently serving a logical rank.
    pub fn phys_of(&self, logical: usize) -> usize {
        self.shared.lock().logical_to_phys[logical]
    }

    /// Host currently serving a logical rank.
    pub fn host_of_logical(&self, logical: usize) -> HostId {
        self.phys_hosts[self.phys_of(logical)]
    }

    /// Physical slots currently inactive and not reserved as swap targets.
    pub fn available_inactive(&self) -> Vec<usize> {
        let s = self.shared.lock();
        (0..self.n_phys())
            .filter(|&p| s.phys_role[p].is_none() && !s.reserved[p])
            .collect()
    }

    /// Number of completed swaps.
    pub fn swaps_done(&self) -> u64 {
        self.shared.lock().swaps_done
    }

    /// Ask the process serving `logical` to hand its rank to inactive slot
    /// `to_phys` at its next swap point.
    pub fn request_swap(&self, logical: usize, to_phys: usize) -> Result<(), SwapError> {
        let mut s = self.shared.lock();
        if logical >= self.n_active {
            return Err(SwapError::BadLogical(logical));
        }
        if to_phys >= s.phys_role.len() || s.phys_role[to_phys].is_some() || s.reserved[to_phys] {
            return Err(SwapError::TargetNotInactive(to_phys));
        }
        let out_phys = s.logical_to_phys[logical];
        if s.pending.contains_key(&out_phys) {
            return Err(SwapError::AlreadyPending(logical));
        }
        s.pending.insert(out_phys, to_phys);
        s.reserved[to_phys] = true;
        Ok(())
    }

    fn activation_key(&self, phys: usize) -> MailKey {
        mail_key(&[self.world_id, SWAP_NS, phys as u64])
    }

    /// At a swap point: if a swap is pending for `phys`, ship `state` to
    /// the incoming process and return `None` (the caller becomes
    /// inactive); otherwise hand `state` back.
    pub fn swap_out_if_requested<S: Send + 'static>(
        &self,
        ctx: &mut Ctx,
        phys: usize,
        state: S,
        state_bytes: f64,
    ) -> Option<S> {
        let (to_phys, logical) = {
            let mut s = self.shared.lock();
            let Some(&to_phys) = s.pending.get(&phys) else {
                return Some(state);
            };
            let logical = s.phys_role[phys].expect("swap-out of an active process");
            // Commit the remap before the transfer: peers immediately route
            // logical-rank traffic to the new host (messages in flight are
            // keyed by logical rank, so nothing is lost).
            s.pending.remove(&phys);
            s.reserved[to_phys] = false;
            s.logical_to_phys[logical] = to_phys;
            s.phys_role[phys] = None;
            s.phys_role[to_phys] = Some(logical);
            s.swaps_done += 1;
            (to_phys, logical)
        };
        let key = self.activation_key(to_phys);
        let dst = self.phys_hosts[to_phys];
        let t0 = self.rec.is_enabled().then(|| ctx.now());
        ctx.send(
            key,
            dst,
            state_bytes,
            Box::new(SwapMsg::Takeover {
                logical,
                state: Box::new(state),
            }),
        );
        if let Some(t0) = t0 {
            let t1 = ctx.now();
            // The outgoing slot's handoff is migration downtime, and the
            // state transfer is a recorded (Swap-class) message so the
            // critical path can cross it.
            if t1 > t0 {
                self.rec
                    .interval(self.wtag, phys, RankState::Migrating, t0, t1);
                // On an internals-enabled recorder, the shipping leg is
                // also a per-hop span nested in the Migrating interval.
                self.rec.hop(
                    self.wtag,
                    phys,
                    RankState::SendBlocked,
                    Some("handoff"),
                    t0,
                    t1,
                );
            }
            self.rec.send_msg(
                self.wtag,
                phys,
                to_phys,
                to_phys,
                SWAP_HANDOFF_TAG,
                state_bytes,
                t0,
                t1,
                false,
                MsgKind::Swap,
            );
        }
        None
    }

    /// Block until this inactive slot is activated (returns the logical
    /// rank and the transferred state) or shut down (returns `None`).
    pub fn wait_activation<S: Send + 'static>(
        &self,
        ctx: &mut Ctx,
        phys: usize,
    ) -> Option<(usize, S)> {
        let key = self.activation_key(phys);
        let t0 = self.rec.is_enabled().then(|| ctx.now());
        let msg = ctx.recv(key);
        let takeover = match *msg
            .downcast::<SwapMsg>()
            .expect("swap mailbox carries SwapMsg")
        {
            SwapMsg::Takeover { logical, state } => {
                let state = *state
                    .downcast::<S>()
                    .unwrap_or_else(|_| panic!("swap state type mismatch on slot {phys}"));
                Some((logical, state))
            }
            SwapMsg::Shutdown => None,
        };
        if let Some(t0) = t0 {
            let t1 = ctx.now();
            if t1 > t0 {
                self.rec
                    .interval(self.wtag, phys, RankState::SwappedOut, t0, t1);
            }
            // Shutdown releases are not recorded as messages (the matching
            // send half would be pure middleware noise); takeovers are, so
            // the state transfer appears in the timeline.
            if takeover.is_some() {
                self.rec
                    .recv_msg(self.wtag, phys, phys, phys, SWAP_HANDOFF_TAG, t0, t1);
                if t1 > t0 {
                    // Split the receiving end of the handoff out of the
                    // SwappedOut block (internals-enabled recorders only).
                    self.rec.hop(
                        self.wtag,
                        phys,
                        RankState::RecvBlocked,
                        Some("handoff"),
                        t0,
                        t1,
                    );
                }
            }
        }
        takeover
    }

    /// Release every inactive slot with a shutdown message. Call once from
    /// exactly one finishing active rank (conventionally logical 0).
    pub fn shutdown(&self, ctx: &mut Ctx) {
        let inactive: Vec<usize> = {
            let s = self.shared.lock();
            (0..self.n_phys())
                .filter(|&p| s.phys_role[p].is_none())
                .collect()
        };
        for p in inactive {
            let key = self.activation_key(p);
            ctx.isend(key, self.phys_hosts[p], 64.0, Box::new(SwapMsg::Shutdown));
        }
    }

    /// Build a communicator for the logical rank served by physical slot
    /// `phys`. Unordered keys (rank state migrates between processes), so
    /// applications must disambiguate in-flight messages with tags —
    /// iteration numbers work well.
    pub fn make_comm(&self, phys: usize, logical: usize) -> Comm {
        let shared = self.shared.clone();
        let hosts = self.phys_hosts.clone();
        let mut comm = Comm::new(
            self.world_id,
            0,
            logical,
            self.n_active,
            Mapping::Dynamic(Arc::new(move |l| hosts[shared.lock().logical_to_phys[l]])),
            DEFAULT_EAGER_THRESHOLD,
            false,
            self.stats[phys].clone(),
        );
        // Recorded intervals land on the *slot*'s track even though message
        // endpoints carry logical ranks.
        comm.set_recorder(self.rec.clone(), self.wtag, phys);
        comm
    }
}

/// Worker skeleton: runs the full active/inactive life cycle of one
/// physical slot.
///
/// * `init(logical)` builds the initial state for slots that start active.
/// * `step(ctx, comm, state)` runs one iteration; return `true` when the
///   application is complete.
///
/// Between iterations the worker visits a swap point; on swap-out it ships
/// its state (`state_bytes` on the wire) and waits for reactivation or
/// shutdown.
pub fn run_swappable<S, FI, FS>(
    ctx: &mut Ctx,
    sw: &SwapWorld,
    phys: usize,
    state_bytes: f64,
    init: FI,
    step: FS,
) where
    S: Send + 'static,
    FI: Fn(usize) -> S,
    FS: Fn(&mut Ctx, &mut Comm, &mut S) -> bool,
{
    let mut current: Option<(usize, S)> = sw.role_of(phys).map(|l| (l, init(l)));
    loop {
        match current.take() {
            Some((logical, mut state)) => {
                let mut comm = sw.make_comm(phys, logical);
                loop {
                    let done = step(ctx, &mut comm, &mut state);
                    if done {
                        if logical == 0 {
                            sw.shutdown(ctx);
                        }
                        return;
                    }
                    match sw.swap_out_if_requested(ctx, phys, state, state_bytes) {
                        Some(s) => state = s,
                        None => break, // now inactive
                    }
                }
            }
            None => match sw.wait_activation::<S>(ctx, phys) {
                Some((logical, state)) => current = Some((logical, state)),
                None => return,
            },
        }
    }
}

/// Launch a swap world: one simulated process per physical slot, all
/// running [`run_swappable`] with the given callbacks.
pub fn launch_swap_world<S, FI, FS>(
    eng: &mut Engine,
    name: &str,
    phys_hosts: &[HostId],
    n_active: usize,
    state_bytes: f64,
    init: FI,
    step: FS,
) -> SwapWorld
where
    S: Send + 'static,
    FI: Fn(usize) -> S + Send + Sync + 'static,
    FS: Fn(&mut Ctx, &mut Comm, &mut S) -> bool + Send + Sync + 'static,
{
    launch_swap_world_traced(eng, name, phys_hosts, n_active, state_bytes, init, step).0
}

/// [`launch_swap_world`], wired into the engine's flight recorder: one
/// recorder track per *physical slot* (labelled with its host), so swap
/// activity shows up as `SwappedOut`/`Migrating` intervals and swap-state
/// handoff messages. With the engine's default disabled recorder this is
/// exactly [`launch_swap_world`].
pub fn launch_swap_world_traced<S, FI, FS>(
    eng: &mut Engine,
    name: &str,
    phys_hosts: &[HostId],
    n_active: usize,
    state_bytes: f64,
    init: FI,
    step: FS,
) -> (SwapWorld, WorldTag)
where
    S: Send + 'static,
    FI: Fn(usize) -> S + Send + Sync + 'static,
    FS: Fn(&mut Ctx, &mut Comm, &mut S) -> bool + Send + Sync + 'static,
{
    let rec = eng.recorder().clone();
    let wtag = rec.register_world(name, &host_labels(eng.grid(), phys_hosts));
    let mut sw = SwapWorld::new(phys_hosts.to_vec(), n_active);
    sw.set_recorder(rec.clone(), wtag);
    let init = Arc::new(init);
    let step = Arc::new(step);
    for (phys, &host) in phys_hosts.iter().enumerate() {
        let sw2 = sw.clone();
        let init2 = init.clone();
        let step2 = step.clone();
        let pid = eng.spawn(&format!("{name}-p{phys}"), host, move |ctx| {
            run_swappable(
                ctx,
                &sw2,
                phys,
                state_bytes,
                |l| init2(l),
                |c, comm, s| step2(c, comm, s),
            );
        });
        rec.bind_pid(pid.0, wtag, phys);
    }
    (sw, wtag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grads_sim::topology::{GridBuilder, HostSpec};

    fn grid(speeds: &[f64]) -> (Grid, Vec<HostId>) {
        let mut b = GridBuilder::new();
        let c = b.cluster("X");
        b.local_link(c, 1e8, 1e-4);
        let hs: Vec<HostId> = speeds
            .iter()
            .map(|&s| b.add_host(c, &HostSpec::with_speed(s)))
            .collect();
        (b.build().unwrap(), hs)
    }

    /// Iterative app: each active rank does fixed work per iteration, then
    /// all active ranks exchange via logical-rank messages tagged by
    /// iteration.
    fn iter_step(iters: u64) -> impl Fn(&mut Ctx, &mut Comm, &mut u64) -> bool + Send + Sync {
        move |ctx, comm, iter| {
            comm.compute(ctx, 1e8);
            // Ring exchange among actives, iteration-tagged.
            let n = comm.size();
            if n > 1 {
                let next = (comm.rank() + 1) % n;
                let prev = (comm.rank() + n - 1) % n;
                comm.isend(ctx, next, *iter, 1000.0, Box::new(*iter));
                let got: u64 = comm.recv_t(ctx, prev, *iter);
                assert_eq!(got, *iter);
            }
            if comm.rank() == 0 {
                let t = ctx.now();
                ctx.trace("iter", *iter as f64);
                ctx.trace("iter_t", t);
            }
            *iter += 1;
            *iter >= iters
        }
    }

    #[test]
    fn runs_without_swaps() {
        let (g, hs) = grid(&[1e9, 1e9, 1e9, 1e9]);
        let mut eng = Engine::new(g);
        launch_swap_world(&mut eng, "app", &hs, 3, 1e6, |_| 0u64, iter_step(5));
        let r = eng.run();
        assert_eq!(r.completed.len(), 4, "all slots exit: {:?}", r.unfinished);
        assert_eq!(r.trace.last_value("iter"), Some(4.0));
    }

    #[test]
    fn swap_moves_logical_rank_and_app_finishes() {
        let (g, hs) = grid(&[1e9, 1e9, 1e9, 2e9]);
        let mut eng = Engine::new(g);
        let sw = launch_swap_world(&mut eng, "app", &hs, 3, 1e6, |_| 0u64, iter_step(10));
        // Controller: swap logical 1 onto the fast inactive slot 3 early on.
        let sw2 = sw.clone();
        eng.spawn("controller", hs[0], move |ctx| {
            ctx.sleep(0.05);
            sw2.request_swap(1, 3).unwrap();
        });
        let r = eng.run();
        assert_eq!(r.trace.last_value("iter"), Some(9.0));
        assert_eq!(sw.swaps_done(), 1);
        assert_eq!(sw.phys_of(1), 3);
        assert_eq!(sw.role_of(0), Some(0));
        assert_eq!(sw.role_of(1), None);
        // Slot 1's worker must have exited cleanly via shutdown.
        assert_eq!(r.completed.len(), 5, "unfinished: {:?}", r.unfinished);
    }

    #[test]
    fn swap_to_fast_host_speeds_up_progress() {
        // Active rank on a slow host; inactive fast host available.
        let run = |do_swap: bool| {
            let (g, hs) = grid(&[1e8, 1e9]);
            let mut eng = Engine::new(g);
            let sw = launch_swap_world(&mut eng, "app", &hs, 1, 1e4, |_| 0u64, iter_step(20));
            if do_swap {
                let sw2 = sw.clone();
                eng.spawn("controller", hs[0], move |ctx| {
                    ctx.sleep(0.1);
                    sw2.request_swap(0, 1).unwrap();
                });
            }
            eng.run().end_time
        };
        let t_no = run(false);
        let t_swap = run(true);
        assert!(
            t_swap < t_no * 0.5,
            "swap should speed up: {t_swap} vs {t_no}"
        );
    }

    #[test]
    fn request_swap_validation() {
        let sw = SwapWorld::new(vec![HostId(0), HostId(1), HostId(2)], 2);
        assert_eq!(sw.request_swap(5, 2), Err(SwapError::BadLogical(5)));
        assert_eq!(sw.request_swap(0, 1), Err(SwapError::TargetNotInactive(1)));
        assert!(sw.request_swap(0, 2).is_ok());
        // Slot 2 now reserved.
        assert_eq!(sw.request_swap(1, 2), Err(SwapError::TargetNotInactive(2)));
        assert_eq!(sw.request_swap(0, 2), Err(SwapError::TargetNotInactive(2)));
        assert!(sw.available_inactive().is_empty());
    }

    #[test]
    fn state_travels_with_the_rank() {
        // Single active rank accumulates into its state; a mid-run swap
        // must not lose the accumulator.
        let (g, hs) = grid(&[1e9, 1e9]);
        let mut eng = Engine::new(g);
        let sw = launch_swap_world(
            &mut eng,
            "app",
            &hs,
            1,
            1e4,
            |_| (0u64, 0u64), // (iter, acc)
            move |ctx, comm, st| {
                comm.compute(ctx, 1e7);
                st.1 += st.0 * st.0;
                st.0 += 1;
                if st.0 >= 10 {
                    ctx.trace("acc", st.1 as f64);
                    return true;
                }
                false
            },
        );
        let sw2 = sw.clone();
        eng.spawn("controller", hs[0], move |ctx| {
            ctx.sleep(0.03);
            sw2.request_swap(0, 1).unwrap();
        });
        let r = eng.run();
        let want: u64 = (0..10).map(|k| k * k).sum();
        assert_eq!(r.trace.last_value("acc"), Some(want as f64));
        assert_eq!(sw.swaps_done(), 1);
    }
}
