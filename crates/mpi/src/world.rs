//! World launch and per-rank profiling statistics.
//!
//! A *world* is a set of simulated processes, one per rank, running the
//! same application closure — the emulation analog of `mpirun`. Each rank
//! gets a [`Comm`] wired to the world's rank→host map
//! and a shared [`RankStats`] that the communication layer fills in through
//! the "MPI profiling interface" (the paper's automatically-inserted
//! sensors read these, §5).

use crate::comm::{Comm, Mapping, DEFAULT_EAGER_THRESHOLD};
use grads_obs::{Recorder, WorldTag};
use grads_sim::prelude::*;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_WORLD: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh globally-unique world id.
pub fn next_world_id() -> u64 {
    NEXT_WORLD.fetch_add(1, Ordering::Relaxed)
}

/// Per-rank profiling counters, maintained by the communication layer and
/// by explicit phase sensors. This is what the contract monitor's sensors
/// read: *"simple computation and communication performance metrics,
/// captured via PAPI and the MPI profiling interface with automatically-
/// inserted sensors"* (§5).
#[derive(Debug, Default, Clone)]
pub struct RankStats {
    /// Virtual seconds spent in `Comm::compute`.
    pub compute_s: f64,
    /// Virtual seconds spent blocked in communication calls.
    pub comm_s: f64,
    /// Point-to-point sends issued.
    pub sends: u64,
    /// Point-to-point receives completed.
    pub recvs: u64,
    /// Total bytes sent.
    pub bytes_sent: f64,
    /// `(phase name, duration)` records reported by phase sensors, in
    /// order of completion.
    pub phase_times: Vec<(String, f64)>,
}

impl RankStats {
    /// Record a named phase duration (an Autopilot-style sensor report).
    pub fn record_phase(&mut self, name: &str, dt: f64) {
        self.phase_times.push((name.to_string(), dt));
    }

    /// Durations of all phases with the given name.
    pub fn phase_series(&self, name: &str) -> Vec<f64> {
        self.phase_times
            .iter()
            .filter(|(n, _)| n == name)
            .map(|&(_, d)| d)
            .collect()
    }
}

/// Handle to a launched world.
pub struct World {
    /// World id (part of every mailbox key).
    pub id: u64,
    /// Name prefix of the rank processes.
    pub name: String,
    /// Host of each rank.
    pub hosts: Vec<HostId>,
    /// Shared per-rank statistics, index = rank.
    pub stats: Vec<Arc<Mutex<RankStats>>>,
    /// Process ids of the ranks.
    pub procs: Vec<ProcId>,
}

/// Shared stats cells plus per-rank `(communicator, entry point)` pairs.
type RankParts<F> = (Vec<Arc<Mutex<RankStats>>>, Vec<(Comm, Arc<F>)>);

/// Human-readable host labels for a rank→host assignment — what the
/// flight recorder shows on each track (`Recorder::register_world`).
pub fn host_labels(grid: &Grid, hosts: &[HostId]) -> Vec<String> {
    hosts.iter().map(|&h| grid.host(h).name.clone()).collect()
}

#[allow(clippy::needless_range_loop)] // rank-indexed construction
fn build_rank_closures<F>(
    id: u64,
    epoch: u64,
    hosts: &[HostId],
    f: Arc<F>,
    rec: &Recorder,
    wtag: WorldTag,
) -> RankParts<F>
where
    F: Fn(&mut Ctx, &mut Comm) + Send + Sync + 'static,
{
    let harc = Arc::new(hosts.to_vec());
    let n = hosts.len();
    let stats: Vec<Arc<Mutex<RankStats>>> = (0..n)
        .map(|_| Arc::new(Mutex::new(RankStats::default())))
        .collect();
    let mut parts = Vec::with_capacity(n);
    for rank in 0..n {
        let mut comm = Comm::new(
            id,
            epoch,
            rank,
            n,
            Mapping::Static(harc.clone()),
            DEFAULT_EAGER_THRESHOLD,
            true,
            stats[rank].clone(),
        );
        comm.set_recorder(rec.clone(), wtag, rank);
        parts.push((comm, f.clone()));
    }
    (stats, parts)
}

/// Launch a world from outside the simulation (before `Engine::run`),
/// starting at virtual time `t`.
pub fn launch_at<F>(eng: &mut Engine, t: f64, name: &str, hosts: &[HostId], f: F) -> World
where
    F: Fn(&mut Ctx, &mut Comm) + Send + Sync + 'static,
{
    launch_at_traced(eng, t, name, hosts, f).0
}

/// [`launch_at`], wired into the engine's flight recorder: registers one
/// track per rank (labelled with its host) and binds rank pids so the
/// kernel stamps lifecycle edges. With the engine's default disabled
/// recorder this is exactly [`launch_at`]; the returned tag is
/// [`WorldTag::NONE`].
pub fn launch_at_traced<F>(
    eng: &mut Engine,
    t: f64,
    name: &str,
    hosts: &[HostId],
    f: F,
) -> (World, WorldTag)
where
    F: Fn(&mut Ctx, &mut Comm) + Send + Sync + 'static,
{
    let rec = eng.recorder().clone();
    let wtag = rec.register_world(name, &host_labels(eng.grid(), hosts));
    let id = next_world_id();
    let (stats, parts) = build_rank_closures(id, 0, hosts, Arc::new(f), &rec, wtag);
    let mut procs = Vec::with_capacity(hosts.len());
    for (rank, (mut comm, f)) in parts.into_iter().enumerate() {
        let pid = eng.spawn_delayed(t, &format!("{name}-{rank}"), hosts[rank], move |ctx| {
            f(ctx, &mut comm)
        });
        rec.bind_pid(pid.0, wtag, rank);
        procs.push(pid);
    }
    (
        World {
            id,
            name: name.to_string(),
            hosts: hosts.to_vec(),
            stats,
            procs,
        },
        wtag,
    )
}

/// Launch a world starting at virtual time 0.
pub fn launch<F>(eng: &mut Engine, name: &str, hosts: &[HostId], f: F) -> World
where
    F: Fn(&mut Ctx, &mut Comm) + Send + Sync + 'static,
{
    launch_at(eng, 0.0, name, hosts, f)
}

/// [`launch`], wired into the engine's flight recorder (see
/// [`launch_at_traced`]).
pub fn launch_traced<F>(eng: &mut Engine, name: &str, hosts: &[HostId], f: F) -> (World, WorldTag)
where
    F: Fn(&mut Ctx, &mut Comm) + Send + Sync + 'static,
{
    launch_at_traced(eng, 0.0, name, hosts, f)
}

/// Launch a world from inside the simulation (e.g. the application manager
/// or a restart after migration). `epoch` distinguishes message keys of
/// successive incarnations of a migrated application.
pub fn launch_from<F>(ctx: &mut Ctx, name: &str, hosts: &[HostId], epoch: u64, f: F) -> World
where
    F: Fn(&mut Ctx, &mut Comm) + Send + Sync + 'static,
{
    launch_from_traced(ctx, &Recorder::disabled(), name, hosts, &[], epoch, f).0
}

/// [`launch_from`], wired into a flight recorder. In-simulation spawners
/// have no engine access, so the caller passes the recorder handle and
/// the per-rank host labels (`labels[r]` serves rank `r`; see
/// [`host_labels`]) explicitly.
pub fn launch_from_traced<F>(
    ctx: &mut Ctx,
    rec: &Recorder,
    name: &str,
    hosts: &[HostId],
    labels: &[String],
    epoch: u64,
    f: F,
) -> (World, WorldTag)
where
    F: Fn(&mut Ctx, &mut Comm) + Send + Sync + 'static,
{
    let wtag = rec.register_world(name, labels);
    let id = next_world_id();
    let (stats, parts) = build_rank_closures(id, epoch, hosts, Arc::new(f), rec, wtag);
    let mut procs = Vec::with_capacity(hosts.len());
    for (rank, (mut comm, f)) in parts.into_iter().enumerate() {
        let pid = ctx.spawn(&format!("{name}-{rank}"), hosts[rank], move |cctx| {
            f(cctx, &mut comm)
        });
        rec.bind_pid(pid.0, wtag, rank);
        procs.push(pid);
    }
    (
        World {
            id,
            name: name.to_string(),
            hosts: hosts.to_vec(),
            stats,
            procs,
        },
        wtag,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use grads_sim::topology::{GridBuilder, HostSpec};

    fn grid(n: usize) -> (Grid, Vec<HostId>) {
        let mut b = GridBuilder::new();
        let c = b.cluster("X");
        b.local_link(c, 1e8, 1e-4);
        let hs = b.add_hosts(c, n, &HostSpec::with_speed(1e9));
        (b.build().unwrap(), hs)
    }

    #[test]
    fn world_ranks_all_run() {
        let (g, hs) = grid(4);
        let mut eng = Engine::new(g);
        launch(&mut eng, "app", &hs, |ctx, comm| {
            let r = comm.rank() as f64;
            ctx.trace("rank", r);
        });
        let r = eng.run();
        assert_eq!(r.completed.len(), 4);
        let mut ranks: Vec<f64> = r.trace.series("rank").iter().map(|&(_, v)| v).collect();
        ranks.sort_by(f64::total_cmp);
        assert_eq!(ranks, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn stats_capture_compute_time() {
        let (g, hs) = grid(2);
        let mut eng = Engine::new(g);
        let w = launch(&mut eng, "app", &hs, |ctx, comm| {
            comm.compute(ctx, 2e9); // 2 s at 1 Gflop/s
        });
        eng.run();
        for s in &w.stats {
            assert!((s.lock().compute_s - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn phase_sensor_records() {
        let mut s = RankStats::default();
        s.record_phase("iter", 1.5);
        s.record_phase("iter", 2.5);
        s.record_phase("io", 0.5);
        assert_eq!(s.phase_series("iter"), vec![1.5, 2.5]);
        assert_eq!(s.phase_series("nope"), Vec::<f64>::new());
    }

    #[test]
    fn world_ids_unique() {
        let (g, hs) = grid(1);
        let mut eng = Engine::new(g);
        let w1 = launch(&mut eng, "a", &hs, |_, _| {});
        let w2 = launch(&mut eng, "b", &hs, |_, _| {});
        assert_ne!(w1.id, w2.id);
        eng.run();
    }
}
