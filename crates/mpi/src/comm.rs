//! The communicator: point-to-point messaging and collective operations
//! over the emulated grid.
//!
//! Semantics follow MPI closely enough for the paper's applications:
//! eager sends below a threshold, rendezvous above it; deterministic
//! matching on `(world, epoch, src, dst, tag)` with per-pair sequence
//! numbers preventing overtaking; binomial-tree broadcast and reduction.
//!
//! The `Mapping` indirection is what makes process swapping possible
//! (§4.2): user communication is addressed to *logical* ranks, and a
//! dynamic mapping resolves the physical host at call time — *"user
//! communication calls to the active set are converted to communication
//! calls to a subset of the full process set."*

use crate::world::RankStats;
use grads_obs::{MsgKind, RankState, Recorder, WorldTag};
use grads_sim::prelude::*;
use grads_sim::process::mail_key;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Default eager/rendezvous switchover: 64 KiB, like common MPICH builds.
pub const DEFAULT_EAGER_THRESHOLD: f64 = 65536.0;

/// Reserved tag space for collectives (user tags must stay below this).
pub const INTERNAL_TAG_BASE: u64 = 1 << 40;
const TAG_BCAST: u64 = INTERNAL_TAG_BASE + 1;
const TAG_REDUCE: u64 = INTERNAL_TAG_BASE + 2;
const TAG_GATHER: u64 = INTERNAL_TAG_BASE + 3;
const TAG_SCATTER: u64 = INTERNAL_TAG_BASE + 4;
const TAG_BARRIER: u64 = INTERNAL_TAG_BASE + 5;

/// Operation label for a per-hop span recorded inside a collective,
/// derived from the internal tag the tree leg was sent on.
fn coll_hop_label(tag: u64) -> Option<&'static str> {
    match tag {
        TAG_BCAST => Some("bcast"),
        TAG_REDUCE => Some("reduce"),
        TAG_GATHER => Some("gather"),
        TAG_SCATTER => Some("scatter"),
        TAG_BARRIER => Some("barrier"),
        _ => None,
    }
}

/// Resolves a logical rank to the host it currently runs on.
#[derive(Clone)]
pub enum Mapping {
    /// Fixed rank→host assignment (ordinary worlds).
    Static(Arc<Vec<HostId>>),
    /// Dynamic resolution (swap-enabled worlds look the current physical
    /// process up in shared swap state).
    Dynamic(Arc<dyn Fn(usize) -> HostId + Send + Sync>),
}

impl Mapping {
    /// Host currently serving logical rank `r`.
    pub fn host_of(&self, r: usize) -> HostId {
        match self {
            Mapping::Static(v) => v[r],
            Mapping::Dynamic(f) => f(r),
        }
    }
}

/// An MPI-like communicator bound to one rank of one world.
pub struct Comm {
    world: u64,
    epoch: u64,
    rank: usize,
    size: usize,
    mapping: Mapping,
    eager_threshold: f64,
    /// When true, per-(peer, tag) sequence numbers are folded into mailbox
    /// keys so successive messages can never overtake each other. Swap
    /// worlds disable this (rank state moves between processes) and must
    /// disambiguate with tags instead.
    ordered: bool,
    send_seq: HashMap<(usize, u64), u64>,
    recv_seq: HashMap<(usize, u64), u64>,
    stats: Arc<Mutex<RankStats>>,
    /// Flight recorder (disabled by default; see [`Comm::set_recorder`]).
    rec: Recorder,
    wtag: WorldTag,
    /// Which recorder track this communicator writes to: the rank for
    /// ordinary worlds, the physical slot for swap worlds.
    track_rank: usize,
    /// Collective nesting depth: > 0 while inside a collective, so inner
    /// point-to-point traffic is flagged [`MsgKind::Collective`] and not
    /// double-counted as blocked intervals.
    coll_depth: u32,
}

impl Comm {
    /// Construct a communicator. Usually done by `world::launch*` or the
    /// swap layer rather than by applications.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        world: u64,
        epoch: u64,
        rank: usize,
        size: usize,
        mapping: Mapping,
        eager_threshold: f64,
        ordered: bool,
        stats: Arc<Mutex<RankStats>>,
    ) -> Self {
        assert!(rank < size, "rank {rank} out of range for size {size}");
        Comm {
            world,
            epoch,
            rank,
            size,
            mapping,
            eager_threshold,
            ordered,
            send_seq: HashMap::new(),
            recv_seq: HashMap::new(),
            stats,
            rec: Recorder::disabled(),
            wtag: WorldTag::NONE,
            track_rank: rank,
            coll_depth: 0,
        }
    }

    /// Attach a flight recorder. `track_rank` selects the recorder track
    /// this communicator's intervals and message halves land on — the rank
    /// itself for ordinary worlds, the physical slot for swap worlds
    /// (where logical ranks move between processes). Message halves always
    /// carry *logical* src/dst ranks, which is what matching keys on.
    pub fn set_recorder(&mut self, rec: Recorder, wtag: WorldTag, track_rank: usize) {
        self.rec = rec;
        self.wtag = wtag;
        self.track_rank = track_rank;
    }

    /// The attached flight recorder and this communicator's world tag /
    /// track (disabled by default).
    pub fn recorder(&self) -> (&Recorder, WorldTag, usize) {
        (&self.rec, self.wtag, self.track_rank)
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The shared statistics cell for this rank.
    pub fn stats(&self) -> Arc<Mutex<RankStats>> {
        self.stats.clone()
    }

    /// Record a named phase duration on this rank's sensor channel.
    pub fn record_phase(&self, name: &str, dt: f64) {
        self.stats.lock().record_phase(name, dt);
    }

    /// Perform `flops` of computation, accounted to this rank's profile.
    pub fn compute(&mut self, ctx: &mut Ctx, flops: f64) {
        let t0 = ctx.now();
        ctx.compute(flops);
        let t1 = ctx.now();
        self.stats.lock().compute_s += t1 - t0;
        if t1 > t0 {
            self.rec
                .interval(self.wtag, self.track_rank, RankState::Compute, t0, t1);
        }
    }

    /// The message class of point-to-point traffic at the current
    /// collective nesting depth.
    #[inline]
    fn msg_kind(&self) -> MsgKind {
        if self.coll_depth > 0 {
            MsgKind::Collective
        } else {
            MsgKind::Pt2pt
        }
    }

    /// Record one send half plus, outside collectives, the blocked
    /// interval a rendezvous wait produced. Inside a collective the span
    /// is recorded as a per-hop internal instead (nested in the enclosing
    /// [`RankState::Collective`] interval, only on an internals-enabled
    /// recorder), so the tree legs stay visible without double-counting
    /// blocked time.
    #[inline]
    fn rec_send(&self, dst: usize, tag: u64, bytes: f64, t0: f64, t1: f64, eager: bool) {
        self.rec.send_msg(
            self.wtag,
            self.track_rank,
            self.rank,
            dst,
            tag,
            bytes,
            t0,
            t1,
            eager,
            self.msg_kind(),
        );
        if self.coll_depth == 0 {
            if t1 > t0 {
                self.rec
                    .interval(self.wtag, self.track_rank, RankState::SendBlocked, t0, t1);
            }
        } else if t1 > t0 {
            self.rec.hop(
                self.wtag,
                self.track_rank,
                RankState::SendBlocked,
                coll_hop_label(tag),
                t0,
                t1,
            );
        }
    }

    fn key(&mut self, src: usize, dst: usize, tag: u64, sending: bool) -> MailKey {
        let seq = if self.ordered {
            let map = if sending {
                &mut self.send_seq
            } else {
                &mut self.recv_seq
            };
            let peer = if sending { dst } else { src };
            let c = map.entry((peer, tag)).or_insert(0);
            let s = *c;
            *c += 1;
            s
        } else {
            0
        };
        mail_key(&[self.world, self.epoch, src as u64, dst as u64, tag, seq])
    }

    /// Send `bytes` to logical rank `dst` with `tag`; eager below the
    /// threshold, rendezvous above it.
    pub fn send(&mut self, ctx: &mut Ctx, dst: usize, tag: u64, bytes: f64, payload: Payload) {
        let t0 = ctx.now();
        let key = self.key(self.rank, dst, tag, true);
        let host = self.mapping.host_of(dst);
        let eager = bytes <= self.eager_threshold;
        if eager {
            ctx.isend(key, host, bytes, payload);
        } else {
            ctx.send(key, host, bytes, payload);
        }
        let t1 = ctx.now();
        {
            let mut s = self.stats.lock();
            s.comm_s += t1 - t0;
            s.sends += 1;
            s.bytes_sent += bytes;
        }
        self.rec_send(dst, tag, bytes, t0, t1, eager);
    }

    /// Synchronous send: always rendezvous, regardless of size.
    pub fn ssend(&mut self, ctx: &mut Ctx, dst: usize, tag: u64, bytes: f64, payload: Payload) {
        let t0 = ctx.now();
        let key = self.key(self.rank, dst, tag, true);
        let host = self.mapping.host_of(dst);
        ctx.send(key, host, bytes, payload);
        let t1 = ctx.now();
        {
            let mut s = self.stats.lock();
            s.comm_s += t1 - t0;
            s.sends += 1;
            s.bytes_sent += bytes;
        }
        self.rec_send(dst, tag, bytes, t0, t1, false);
    }

    /// Buffered send: always eager, regardless of size.
    pub fn isend(&mut self, ctx: &mut Ctx, dst: usize, tag: u64, bytes: f64, payload: Payload) {
        let t0 = ctx.now();
        let key = self.key(self.rank, dst, tag, true);
        let host = self.mapping.host_of(dst);
        ctx.isend(key, host, bytes, payload);
        let t1 = ctx.now();
        {
            let mut s = self.stats.lock();
            s.comm_s += t1 - t0;
            s.sends += 1;
            s.bytes_sent += bytes;
        }
        self.rec_send(dst, tag, bytes, t0, t1, true);
    }

    /// Blocking receive from logical rank `src` with `tag`.
    pub fn recv(&mut self, ctx: &mut Ctx, src: usize, tag: u64) -> Payload {
        let t0 = ctx.now();
        let key = self.key(src, self.rank, tag, false);
        let p = ctx.recv(key);
        let t1 = ctx.now();
        {
            let mut s = self.stats.lock();
            s.comm_s += t1 - t0;
            s.recvs += 1;
        }
        self.rec
            .recv_msg(self.wtag, self.track_rank, src, self.rank, tag, t0, t1);
        if self.coll_depth == 0 {
            if t1 > t0 {
                self.rec
                    .interval(self.wtag, self.track_rank, RankState::RecvBlocked, t0, t1);
            }
        } else if t1 > t0 {
            self.rec.hop(
                self.wtag,
                self.track_rank,
                RankState::RecvBlocked,
                coll_hop_label(tag),
                t0,
                t1,
            );
        }
        p
    }

    /// Typed send: boxes `value`.
    pub fn send_t<T: Send + 'static>(
        &mut self,
        ctx: &mut Ctx,
        dst: usize,
        tag: u64,
        bytes: f64,
        value: T,
    ) {
        self.send(ctx, dst, tag, bytes, Box::new(value));
    }

    /// Typed receive: downcasts, panicking on a type mismatch (a program
    /// bug, reported through the run report like any process panic).
    pub fn recv_t<T: Send + 'static>(&mut self, ctx: &mut Ctx, src: usize, tag: u64) -> T {
        *self
            .recv(ctx, src, tag)
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("recv_t: payload type mismatch from rank {src} tag {tag}"))
    }

    // ------------------------------------------------------------------
    // Collectives (binomial trees, like MPICH's small-message algorithms)
    // ------------------------------------------------------------------

    /// Enter a collective: bump the nesting depth and, on the outermost
    /// entry of a recording communicator, capture the start time. The
    /// extra `ctx.now()` is determinism-invisible (`Request::Now` pushes
    /// no event and burns no sequence number).
    pub(crate) fn coll_begin(&mut self, ctx: &mut Ctx) -> Option<f64> {
        self.coll_depth += 1;
        (self.coll_depth == 1 && self.rec.is_enabled()).then(|| ctx.now())
    }

    /// Leave a collective begun with [`Comm::coll_begin`], recording the
    /// outermost span as one [`RankState::Collective`] interval.
    pub(crate) fn coll_end(&mut self, ctx: &mut Ctx, begin: Option<f64>, op: &'static str) {
        self.coll_depth -= 1;
        if let Some(t0) = begin {
            let t1 = ctx.now();
            if t1 > t0 {
                self.rec.interval_detail(
                    self.wtag,
                    self.track_rank,
                    RankState::Collective,
                    Some(op),
                    t0,
                    t1,
                );
            }
        }
    }

    /// Broadcast `value` from `root` to every rank; all ranks return it.
    /// Non-root ranks pass `None`.
    pub fn bcast_t<T: Clone + Send + 'static>(
        &mut self,
        ctx: &mut Ctx,
        root: usize,
        bytes: f64,
        value: Option<T>,
    ) -> T {
        let g = self.coll_begin(ctx);
        let out = self.bcast_impl(ctx, root, bytes, value);
        self.coll_end(ctx, g, "bcast");
        out
    }

    fn bcast_impl<T: Clone + Send + 'static>(
        &mut self,
        ctx: &mut Ctx,
        root: usize,
        bytes: f64,
        value: Option<T>,
    ) -> T {
        assert!(root < self.size, "bcast root out of range");
        if self.size == 1 {
            return value.expect("root must provide the broadcast value");
        }
        let vrank = (self.rank + self.size - root) % self.size;
        let mut val: Option<T> = if vrank == 0 {
            Some(value.expect("root must provide the broadcast value"))
        } else {
            None
        };
        let mut mask = 1usize;
        while mask < self.size {
            if vrank & mask != 0 {
                let src = (vrank - mask + root) % self.size;
                val = Some(self.recv_t::<T>(ctx, src, TAG_BCAST));
                break;
            }
            mask <<= 1;
        }
        let mut m = mask >> 1;
        while m > 0 {
            let vdst = vrank + m;
            if vdst < self.size {
                let dst = (vdst + root) % self.size;
                let v = val.as_ref().expect("value present in send phase").clone();
                self.send(ctx, dst, TAG_BCAST, bytes, Box::new(v));
            }
            m >>= 1;
        }
        val.expect("value present after broadcast")
    }

    /// Reduce every rank's `value` to `root` with `op`; only `root` gets
    /// `Some(result)`. `op` must be associative and commutative.
    pub fn reduce_t<T, F>(
        &mut self,
        ctx: &mut Ctx,
        root: usize,
        bytes: f64,
        value: T,
        op: F,
    ) -> Option<T>
    where
        T: Send + 'static,
        F: Fn(T, T) -> T,
    {
        let g = self.coll_begin(ctx);
        let out = self.reduce_impl(ctx, root, bytes, value, op);
        self.coll_end(ctx, g, "reduce");
        out
    }

    fn reduce_impl<T, F>(
        &mut self,
        ctx: &mut Ctx,
        root: usize,
        bytes: f64,
        value: T,
        op: F,
    ) -> Option<T>
    where
        T: Send + 'static,
        F: Fn(T, T) -> T,
    {
        assert!(root < self.size, "reduce root out of range");
        let vrank = (self.rank + self.size - root) % self.size;
        let mut val = value;
        let mut mask = 1usize;
        while mask < self.size {
            if vrank & mask != 0 {
                let dst = (vrank - mask + root) % self.size;
                self.send(ctx, dst, TAG_REDUCE, bytes, Box::new(val));
                return None;
            }
            let vsrc = vrank + mask;
            if vsrc < self.size {
                let src = (vsrc + root) % self.size;
                let other = self.recv_t::<T>(ctx, src, TAG_REDUCE);
                val = op(val, other);
            }
            mask <<= 1;
        }
        Some(val)
    }

    /// All-reduce: reduce to rank 0, then broadcast the result.
    pub fn allreduce_t<T, F>(&mut self, ctx: &mut Ctx, bytes: f64, value: T, op: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let g = self.coll_begin(ctx);
        let reduced = self.reduce_t(ctx, 0, bytes, value, op);
        let out = self.bcast_t(ctx, 0, bytes, reduced);
        self.coll_end(ctx, g, "allreduce");
        out
    }

    /// Barrier: binomial fan-in to rank 0, then fan-out release. All
    /// messages are zero-byte (pure latency).
    pub fn barrier(&mut self, ctx: &mut Ctx) {
        let g = self.coll_begin(ctx);
        self.barrier_impl(ctx);
        self.coll_end(ctx, g, "barrier");
    }

    fn barrier_impl(&mut self, ctx: &mut Ctx) {
        let (rank, size) = (self.rank, self.size);
        if size == 1 {
            return;
        }
        // In the binomial tree rooted at 0, the children of r are r + 2^k
        // for all 2^k below r's lowest set bit (every power of two for the
        // root).
        let child_limit = if rank == 0 {
            usize::MAX
        } else {
            lowest_set_bit(rank)
        };
        // Fan-in: collect from children, then report to the parent.
        let mut m = 1usize;
        while m < child_limit {
            let child = rank + m;
            if child >= size {
                break;
            }
            let _ = self.recv(ctx, child, TAG_BARRIER);
            m <<= 1;
        }
        if rank != 0 {
            let parent = rank - lowest_set_bit(rank);
            self.send(ctx, parent, TAG_BARRIER, 0.0, Box::new(()));
            let _ = self.recv(ctx, parent, TAG_BARRIER);
        }
        // Fan-out: release children.
        let mut m = 1usize;
        while m < child_limit {
            let child = rank + m;
            if child >= size {
                break;
            }
            self.send(ctx, child, TAG_BARRIER, 0.0, Box::new(()));
            m <<= 1;
        }
    }

    /// Gather every rank's `value` at `root` (rank order); only `root`
    /// returns `Some`.
    pub fn gather_t<T: Send + 'static>(
        &mut self,
        ctx: &mut Ctx,
        root: usize,
        bytes: f64,
        value: T,
    ) -> Option<Vec<T>> {
        let g = self.coll_begin(ctx);
        let out = self.gather_impl(ctx, root, bytes, value);
        self.coll_end(ctx, g, "gather");
        out
    }

    #[allow(clippy::needless_range_loop)] // rank-indexed slots
    fn gather_impl<T: Send + 'static>(
        &mut self,
        ctx: &mut Ctx,
        root: usize,
        bytes: f64,
        value: T,
    ) -> Option<Vec<T>> {
        assert!(root < self.size, "gather root out of range");
        if self.rank != root {
            self.send(ctx, root, TAG_GATHER, bytes, Box::new(value));
            return None;
        }
        let mut out: Vec<Option<T>> = (0..self.size).map(|_| None).collect();
        out[root] = Some(value);
        for r in 0..self.size {
            if r == root {
                continue;
            }
            out[r] = Some(self.recv_t::<T>(ctx, r, TAG_GATHER));
        }
        Some(out.into_iter().map(|o| o.expect("gathered")).collect())
    }

    /// Scatter `values[r]` from `root` to each rank `r`; every rank returns
    /// its element. Non-roots pass `None`.
    pub fn scatter_t<T: Send + 'static>(
        &mut self,
        ctx: &mut Ctx,
        root: usize,
        bytes_per_rank: f64,
        values: Option<Vec<T>>,
    ) -> T {
        let g = self.coll_begin(ctx);
        let out = self.scatter_impl(ctx, root, bytes_per_rank, values);
        self.coll_end(ctx, g, "scatter");
        out
    }

    fn scatter_impl<T: Send + 'static>(
        &mut self,
        ctx: &mut Ctx,
        root: usize,
        bytes_per_rank: f64,
        values: Option<Vec<T>>,
    ) -> T {
        assert!(root < self.size, "scatter root out of range");
        if self.rank == root {
            let values = values.expect("root must provide scatter values");
            assert_eq!(values.len(), self.size, "scatter length mismatch");
            let mut mine = None;
            for (r, v) in values.into_iter().enumerate() {
                if r == root {
                    mine = Some(v);
                } else {
                    self.send(ctx, r, TAG_SCATTER, bytes_per_rank, Box::new(v));
                }
            }
            mine.expect("root element")
        } else {
            self.recv_t::<T>(ctx, root, TAG_SCATTER)
        }
    }

    /// All-gather: gather at rank 0, then broadcast the vector.
    pub fn allgather_t<T: Clone + Send + 'static>(
        &mut self,
        ctx: &mut Ctx,
        bytes: f64,
        value: T,
    ) -> Vec<T> {
        let g = self.coll_begin(ctx);
        let gathered = self.gather_t(ctx, 0, bytes, value);
        let out = self.bcast_t(ctx, 0, bytes * self.size as f64, gathered);
        self.coll_end(ctx, g, "allgather");
        out
    }
}

fn lowest_set_bit(x: usize) -> usize {
    x & x.wrapping_neg()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::launch;
    use grads_sim::topology::{GridBuilder, HostSpec};

    fn grid(n: usize) -> (Grid, Vec<HostId>) {
        let mut b = GridBuilder::new();
        let c = b.cluster("X");
        b.local_link(c, 1e8, 1e-4);
        let hs = b.add_hosts(c, n, &HostSpec::with_speed(1e9));
        (b.build().unwrap(), hs)
    }

    fn run_world<F>(n: usize, f: F) -> grads_sim::engine::RunReport
    where
        F: Fn(&mut Ctx, &mut Comm) + Send + Sync + 'static,
    {
        let (g, hs) = grid(n);
        let mut eng = Engine::new(g);
        launch(&mut eng, "t", &hs, f);
        eng.run()
    }

    #[test]
    fn pt2pt_roundtrip() {
        let r = run_world(2, |ctx, comm| {
            if comm.rank() == 0 {
                comm.send_t(ctx, 1, 7, 1000.0, 123u64);
                let back: u64 = comm.recv_t(ctx, 1, 8);
                ctx.trace("back", back as f64);
            } else {
                let v: u64 = comm.recv_t(ctx, 0, 7);
                comm.send_t(ctx, 0, 8, 1000.0, v + 1);
            }
        });
        assert_eq!(r.trace.last_value("back"), Some(124.0));
    }

    #[test]
    fn messages_do_not_overtake() {
        // Send a large (rendezvous) then a small (eager) on the same tag;
        // the receiver must see them in order.
        let r = run_world(2, |ctx, comm| {
            if comm.rank() == 0 {
                comm.send_t(ctx, 1, 1, 1e6, 1u64); // rendezvous
                comm.send_t(ctx, 1, 1, 10.0, 2u64); // eager
            } else {
                let a: u64 = comm.recv_t(ctx, 0, 1);
                let b: u64 = comm.recv_t(ctx, 0, 1);
                ctx.trace("first", a as f64);
                ctx.trace("second", b as f64);
            }
        });
        assert_eq!(r.trace.last_value("first"), Some(1.0));
        assert_eq!(r.trace.last_value("second"), Some(2.0));
    }

    #[test]
    fn bcast_reaches_everyone() {
        for n in [1usize, 2, 3, 4, 5, 8, 9] {
            let r = run_world(n, move |ctx, comm| {
                let v = comm.bcast_t(ctx, 0, 100.0, (comm.rank() == 0).then_some(42u32));
                ctx.trace("v", v as f64);
            });
            let vs = r.trace.series("v");
            assert_eq!(vs.len(), n, "n = {n}");
            assert!(vs.iter().all(|&(_, v)| v == 42.0), "n = {n}");
        }
    }

    #[test]
    fn bcast_nonzero_root() {
        let r = run_world(5, |ctx, comm| {
            let v = comm.bcast_t(ctx, 3, 100.0, (comm.rank() == 3).then_some(7u32));
            ctx.trace("v", v as f64);
        });
        assert_eq!(r.trace.series("v").len(), 5);
        assert!(r.trace.series("v").iter().all(|&(_, v)| v == 7.0));
    }

    #[test]
    fn reduce_sums() {
        for n in [1usize, 2, 3, 4, 7, 8] {
            let r = run_world(n, move |ctx, comm| {
                let me = comm.rank() as u64;
                if let Some(total) = comm.reduce_t(ctx, 0, 8.0, me, |a, b| a + b) {
                    ctx.trace("total", total as f64);
                }
            });
            let want = (n * (n - 1) / 2) as f64;
            assert_eq!(r.trace.last_value("total"), Some(want), "n = {n}");
        }
    }

    #[test]
    fn reduce_nonzero_root() {
        let r = run_world(6, |ctx, comm| {
            let me = comm.rank() as u64;
            if let Some(total) = comm.reduce_t(ctx, 2, 8.0, me, |a, b| a + b) {
                ctx.trace("total", total as f64);
                ctx.trace("who", comm.rank() as f64);
            }
        });
        assert_eq!(r.trace.last_value("total"), Some(15.0));
        assert_eq!(r.trace.last_value("who"), Some(2.0));
    }

    #[test]
    fn allreduce_gives_all_ranks_result() {
        let r = run_world(5, |ctx, comm| {
            let v = comm.allreduce_t(ctx, 8.0, comm.rank() as u64 + 1, |a, b| a.max(b));
            ctx.trace("v", v as f64);
        });
        let vs = r.trace.series("v");
        assert_eq!(vs.len(), 5);
        assert!(vs.iter().all(|&(_, v)| v == 5.0));
    }

    #[test]
    fn gather_in_rank_order() {
        let r = run_world(4, |ctx, comm| {
            if let Some(v) = comm.gather_t(ctx, 1, 8.0, comm.rank() as u64 * 10) {
                assert_eq!(v, vec![0, 10, 20, 30]);
                ctx.trace("ok", 1.0);
            }
        });
        assert_eq!(r.trace.last_value("ok"), Some(1.0));
    }

    #[test]
    fn scatter_distributes() {
        let r = run_world(4, |ctx, comm| {
            let vals = (comm.rank() == 0).then(|| vec![100u64, 101, 102, 103]);
            let v = comm.scatter_t(ctx, 0, 8.0, vals);
            assert_eq!(v, 100 + comm.rank() as u64);
            ctx.trace("ok", 1.0);
        });
        assert_eq!(r.trace.series("ok").len(), 4);
    }

    #[test]
    fn allgather_everyone_gets_vector() {
        let r = run_world(3, |ctx, comm| {
            let v = comm.allgather_t(ctx, 8.0, comm.rank() as u64);
            assert_eq!(v, vec![0, 1, 2]);
            ctx.trace("ok", 1.0);
        });
        assert_eq!(r.trace.series("ok").len(), 3);
    }

    #[test]
    fn barrier_synchronizes() {
        let r = run_world(6, |ctx, comm| {
            // Stagger arrivals; everyone must leave after the last arrival.
            ctx.sleep(comm.rank() as f64);
            comm.barrier(ctx);
            let t = ctx.now();
            ctx.trace("t", t);
        });
        for (_, t) in r.trace.series("t") {
            assert!(t >= 5.0, "left the barrier early at {t}");
        }
    }

    #[test]
    fn comm_stats_accumulate() {
        let (g, hs) = grid(2);
        let mut eng = Engine::new(g);
        let w = launch(&mut eng, "t", &hs, |ctx, comm| {
            if comm.rank() == 0 {
                comm.send_t(ctx, 1, 1, 5000.0, 1u8);
            } else {
                let _: u8 = comm.recv_t(ctx, 0, 1);
            }
        });
        eng.run();
        let s0 = w.stats[0].lock().clone();
        let s1 = w.stats[1].lock().clone();
        assert_eq!(s0.sends, 1);
        assert_eq!(s1.recvs, 1);
        assert!((s0.bytes_sent - 5000.0).abs() < 1e-9);
        assert!(s1.comm_s > 0.0);
    }
}
