//! Extended collectives: scan, reduce-scatter, all-to-all, and paired
//! send-receive.
//!
//! The §2 binder links GrADS programs against preinstalled MPI libraries;
//! these complete the usual operation set beyond what the paper's three
//! applications strictly need, so new COPs written against this substrate
//! do not have to hand-roll them.

use crate::comm::{Comm, INTERNAL_TAG_BASE};
use grads_sim::prelude::*;

const TAG_SCAN: u64 = INTERNAL_TAG_BASE + 16;
const TAG_A2A: u64 = INTERNAL_TAG_BASE + 18;
const TAG_SENDRECV: u64 = INTERNAL_TAG_BASE + 19;

impl Comm {
    /// Inclusive prefix scan: rank `r` returns `op(v₀, v₁, …, v_r)`.
    /// Linear pipeline (ranks are few in grid settings; latency per hop is
    /// one message).
    pub fn scan_t<T, F>(&mut self, ctx: &mut Ctx, bytes: f64, value: T, op: F) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T,
    {
        let g = self.coll_begin(ctx);
        let r = self.rank();
        let mut acc = value;
        if r > 0 {
            let prev: T = self.recv_t(ctx, r - 1, TAG_SCAN);
            acc = op(prev, acc);
        }
        if r + 1 < self.size() {
            self.send(ctx, r + 1, TAG_SCAN, bytes, Box::new(acc.clone()));
        }
        self.coll_end(ctx, g, "scan");
        acc
    }

    /// Reduce-scatter: element-wise reduce `contrib` (one element per
    /// rank) across all ranks, then hand each rank its own element.
    /// Implemented as reduce-to-0 + scatter.
    pub fn reduce_scatter_t<T, F>(
        &mut self,
        ctx: &mut Ctx,
        bytes_per_elem: f64,
        contrib: Vec<T>,
        op: F,
    ) -> T
    where
        T: Clone + Send + 'static,
        F: Fn(T, T) -> T + Copy,
    {
        assert_eq!(
            contrib.len(),
            self.size(),
            "reduce_scatter needs one element per rank"
        );
        let g = self.coll_begin(ctx);
        let total_bytes = bytes_per_elem * self.size() as f64;
        let reduced = self.reduce_t(ctx, 0, total_bytes, contrib, |a, b| {
            a.into_iter().zip(b).map(|(x, y)| op(x, y)).collect()
        });
        let out = self.scatter_t(ctx, 0, bytes_per_elem, reduced);
        self.coll_end(ctx, g, "reduce_scatter");
        out
    }

    /// All-to-all personalized exchange: rank `r` sends `data[d]` to rank
    /// `d` and returns the vector of elements received (index = source
    /// rank). Messages are eager and tagged by a reserved tag, so the
    /// exchange cannot deadlock.
    #[allow(clippy::needless_range_loop)] // rank-indexed slots
    pub fn alltoall_t<T: Send + 'static>(
        &mut self,
        ctx: &mut Ctx,
        bytes_per_elem: f64,
        data: Vec<T>,
    ) -> Vec<T> {
        assert_eq!(
            self.size(),
            data.len(),
            "alltoall needs one element per rank"
        );
        let g = self.coll_begin(ctx);
        let me = self.rank();
        let mut out: Vec<Option<T>> = (0..self.size()).map(|_| None).collect();
        for (d, v) in data.into_iter().enumerate() {
            if d == me {
                out[d] = Some(v);
            } else {
                self.isend(ctx, d, TAG_A2A, bytes_per_elem, Box::new(v));
            }
        }
        for s in 0..self.size() {
            if s == me {
                continue;
            }
            out[s] = Some(self.recv_t::<T>(ctx, s, TAG_A2A));
        }
        self.coll_end(ctx, g, "alltoall");
        out.into_iter()
            .map(|o| o.expect("element received"))
            .collect()
    }

    /// Paired exchange with one peer: sends `value` to `peer` and receives
    /// its counterpart, without deadlock (the send is eager).
    pub fn sendrecv_t<T: Send + 'static>(
        &mut self,
        ctx: &mut Ctx,
        peer: usize,
        bytes: f64,
        value: T,
    ) -> T {
        if peer == self.rank() {
            return value;
        }
        self.isend(ctx, peer, TAG_SENDRECV, bytes, Box::new(value));
        self.recv_t(ctx, peer, TAG_SENDRECV)
    }
}

#[cfg(test)]
mod tests {
    use crate::world::launch;
    use grads_sim::prelude::*;
    use grads_sim::topology::{GridBuilder, HostSpec};

    fn grid(n: usize) -> (Grid, Vec<HostId>) {
        let mut b = GridBuilder::new();
        let c = b.cluster("X");
        b.local_link(c, 1e8, 1e-4);
        let hs = b.add_hosts(c, n, &HostSpec::with_speed(1e9));
        (b.build().unwrap(), hs)
    }

    #[test]
    fn scan_computes_prefix_sums() {
        for n in [1usize, 2, 5, 8] {
            let (g, hs) = grid(n);
            let mut eng = Engine::new(g);
            launch(&mut eng, "scan", &hs, |ctx, comm| {
                let v = comm.scan_t(ctx, 8.0, comm.rank() as u64 + 1, |a, b| a + b);
                let r = comm.rank() as u64;
                let want = (r + 1) * (r + 2) / 2;
                assert_eq!(v, want, "rank {r}");
                ctx.trace("ok", 1.0);
            });
            let r = eng.run();
            assert_eq!(r.trace.series("ok").len(), n);
        }
    }

    #[test]
    fn reduce_scatter_distributes_sums() {
        let (g, hs) = grid(4);
        let mut eng = Engine::new(g);
        launch(&mut eng, "rs", &hs, |ctx, comm| {
            // contrib[d] = my_rank * 10 + d; the reduced element for rank d
            // is sum over ranks of (rank*10 + d) = 60 + 4d.
            let contrib: Vec<u64> = (0..comm.size())
                .map(|d| comm.rank() as u64 * 10 + d as u64)
                .collect();
            let mine = comm.reduce_scatter_t(ctx, 8.0, contrib, |a, b| a + b);
            assert_eq!(mine, 60 + 4 * comm.rank() as u64);
            ctx.trace("ok", 1.0);
        });
        let r = eng.run();
        assert_eq!(r.trace.series("ok").len(), 4);
    }

    #[test]
    fn alltoall_exchanges_everything() {
        let (g, hs) = grid(5);
        let mut eng = Engine::new(g);
        launch(&mut eng, "a2a", &hs, |ctx, comm| {
            let data: Vec<(usize, usize)> = (0..comm.size()).map(|d| (comm.rank(), d)).collect();
            let got = comm.alltoall_t(ctx, 16.0, data);
            for (s, &(src, dst)) in got.iter().enumerate() {
                assert_eq!(src, s, "element from rank {s}");
                assert_eq!(dst, comm.rank());
            }
            ctx.trace("ok", 1.0);
        });
        let r = eng.run();
        assert_eq!(r.trace.series("ok").len(), 5);
    }

    #[test]
    fn sendrecv_swaps_values() {
        let (g, hs) = grid(2);
        let mut eng = Engine::new(g);
        launch(&mut eng, "sr", &hs, |ctx, comm| {
            let peer = 1 - comm.rank();
            let got = comm.sendrecv_t(ctx, peer, 8.0, comm.rank() as u64);
            assert_eq!(got, peer as u64);
            ctx.trace("ok", 1.0);
        });
        let r = eng.run();
        assert_eq!(r.trace.series("ok").len(), 2);
    }

    #[test]
    fn sendrecv_self_is_identity() {
        let (g, hs) = grid(1);
        let mut eng = Engine::new(g);
        launch(&mut eng, "sr1", &hs, |ctx, comm| {
            let got = comm.sendrecv_t(ctx, 0, 8.0, 42u8);
            assert_eq!(got, 42);
            let _ = ctx;
        });
        eng.run();
    }
}
