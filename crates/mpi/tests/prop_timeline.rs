//! Property-based tests of the flight recorder's message matching and
//! determinism, over randomized communication scripts.
//!
//! Invariants checked for every generated workload:
//!
//! * every send half and every receive half pairs into exactly one
//!   [`MsgRecord`] (no unmatched halves once the program terminates);
//! * every record satisfies `post ≤ match ≤ complete` on both halves
//!   (`t_send_post ≤ t_match`, rendezvous additionally
//!   `t_recv_post ≤ t_match`, and `t_match ≤ t_recv_complete`);
//! * state intervals never run backwards and stay inside their track's
//!   lifecycle span;
//! * two recorder-enabled runs of the same script produce bit-identical
//!   [`Timeline`]s and byte-identical Chrome-trace exports.

use grads_mpi::launch_traced;
use grads_obs::{RankState, Recorder, Timeline};
use grads_sim::prelude::*;
use grads_sim::topology::{GridBuilder, HostSpec};
use proptest::prelude::*;

/// One step of the per-rank script; every rank executes the same list.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Compute `k × 1e6` flops.
    Compute(u8),
    /// Eager ring exchange (`isend` next, `recv` prev) of `bytes`.
    RingEager(u16),
    /// Rendezvous pairwise handoff: even ranks `ssend` 70 kB + `extra`
    /// to their odd neighbour.
    PairRendezvous(u16),
    /// Binomial broadcast from `root % size`.
    Bcast(u8, u16),
    /// Allreduce (reduce + bcast under one collective span).
    Allreduce(u16),
    /// Dissemination barrier.
    Barrier,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u8..50).prop_map(Op::Compute),
        (0u16..65535).prop_map(Op::RingEager),
        (0u16..65535).prop_map(Op::PairRendezvous),
        (0u8..255, 0u16..65535).prop_map(|(r, b)| Op::Bcast(r, b)),
        (0u16..65535).prop_map(Op::Allreduce),
        Just(Op::Barrier),
    ]
}

/// Run the script on `n` ranks with a fresh recorder; return the built
/// timeline, its Chrome export, and the kernel end time.
fn run_script(n: usize, ops: &[Op]) -> (Timeline, String, f64) {
    run_script_rec(n, ops, Recorder::enabled())
}

/// As [`run_script`] but with collective-internals (per-hop) recording.
fn run_script_internals(n: usize, ops: &[Op]) -> (Timeline, String, f64) {
    run_script_rec(n, ops, Recorder::enabled_with_internals())
}

fn run_script_rec(n: usize, ops: &[Op], rec: Recorder) -> (Timeline, String, f64) {
    let mut b = GridBuilder::new();
    let c = b.cluster("X");
    b.local_link(c, 1e8, 1e-4);
    let hs = b.add_hosts(c, n, &HostSpec::with_speed(1e9));
    let mut eng = Engine::new(b.build().unwrap());
    eng.set_recorder(rec.clone());
    let script = ops.to_vec();
    launch_traced(&mut eng, "prop", &hs, move |ctx, comm| {
        let me = comm.rank();
        let size = comm.size();
        for (i, op) in script.iter().enumerate() {
            let tag = 100 + i as u64;
            match *op {
                Op::Compute(k) => comm.compute(ctx, k as f64 * 1e6),
                Op::RingEager(bytes) => {
                    if size > 1 {
                        let next = (me + 1) % size;
                        let prev = (me + size - 1) % size;
                        comm.isend(ctx, next, tag, bytes as f64, Box::new(me));
                        let _: usize = comm.recv_t(ctx, prev, tag);
                    }
                }
                Op::PairRendezvous(extra) => {
                    let bytes = 70_000.0 + extra as f64;
                    if me % 2 == 0 {
                        if me + 1 < size {
                            comm.ssend(ctx, me + 1, tag, bytes, Box::new(me));
                        }
                    } else {
                        let _: usize = comm.recv_t(ctx, me - 1, tag);
                    }
                }
                Op::Bcast(root, bytes) => {
                    let root = root as usize % size;
                    let _ = comm.bcast_t(ctx, root, bytes as f64, (me == root).then_some(42u64));
                }
                Op::Allreduce(bytes) => {
                    let _ = comm.allreduce_t(ctx, bytes as f64, me as u64, |a, b| a + b);
                }
                Op::Barrier => comm.barrier(ctx),
            }
        }
    });
    let r = eng.run();
    let tl = rec.timeline();
    let chrome = tl.to_chrome_trace();
    (tl, chrome, r.end_time)
}

proptest! {
    /// Matching completeness + half ordering, for arbitrary scripts.
    #[test]
    fn every_message_matches_exactly_once_with_ordered_stamps(
        n in 2usize..6,
        ops in prop::collection::vec(op(), 0..10),
    ) {
        let (tl, _, end_time) = run_script(n, &ops);
        prop_assert_eq!(tl.unmatched_sends, 0, "all sends must match");
        prop_assert_eq!(tl.unmatched_recvs, 0, "all recvs must match");
        for m in &tl.msgs {
            prop_assert!(m.t_send_post <= m.t_match, "send post ≤ match: {m:?}");
            prop_assert!(m.t_match <= m.t_recv_complete, "match ≤ recv complete: {m:?}");
            prop_assert!(m.t_send_post <= m.t_send_complete, "send half ordered: {m:?}");
            prop_assert!(m.t_recv_post <= m.t_recv_complete, "recv half ordered: {m:?}");
            if !m.eager {
                prop_assert!(m.t_recv_post <= m.t_match, "rendezvous recv post ≤ match: {m:?}");
            }
            prop_assert!(m.t_recv_complete <= end_time);
        }
        for t in &tl.tracks {
            prop_assert!(t.live && t.start <= t.end);
            for iv in &t.intervals {
                prop_assert!(iv.t0 <= iv.t1, "interval runs forward: {iv:?}");
                prop_assert!(t.start <= iv.t0 && iv.t1 <= t.end,
                    "interval inside the lifecycle span: {iv:?} in {}..{}", t.start, t.end);
            }
        }
    }

    /// Collective internals: per-hop spans nest inside exactly their
    /// parent `Collective` interval and tile it bitwise — and recording
    /// them perturbs nothing (same end time, same state intervals, same
    /// matched messages as a plain recorder run).
    #[test]
    fn collective_hops_nest_and_tile_their_parent_interval(
        n in 2usize..6,
        ops in prop::collection::vec(op(), 1..10),
    ) {
        let (plain, _, plain_end) = run_script(n, &ops);
        let (tl, _, end) = run_script_internals(n, &ops);
        prop_assert_eq!(end.to_bits(), plain_end.to_bits(),
            "internals recording must not perturb the run");
        prop_assert_eq!(&plain.msgs, &tl.msgs, "matched messages identical");
        for (a, b) in plain.tracks.iter().zip(&tl.tracks) {
            prop_assert_eq!(&a.intervals, &b.intervals, "state intervals identical");
            prop_assert!(a.hops.is_empty(), "plain recorder keeps no hops");
        }
        for t in &tl.tracks {
            let colls: Vec<_> = t
                .intervals
                .iter()
                .filter(|iv| iv.state == RankState::Collective)
                .collect();
            for h in &t.hops {
                prop_assert!(h.t1 > h.t0, "recorded hops have width: {h:?}");
                prop_assert!(
                    colls.iter().any(|c| c.t0 <= h.t0 && h.t1 <= c.t1),
                    "hop nests in a Collective interval: {:?}", h
                );
            }
            for c in &colls {
                let inside: Vec<_> = t
                    .hops
                    .iter()
                    .filter(|h| c.t0 <= h.t0 && h.t1 <= c.t1)
                    .collect();
                if c.t1 > c.t0 {
                    // Inside a collective the rank is always in a send or
                    // a recv call, so the positive-width hops tile the
                    // parent exactly — bitwise-shared endpoints.
                    prop_assert!(!inside.is_empty(),
                        "positive-width collective must contain hops: {:?}", c);
                    prop_assert_eq!(inside[0].t0.to_bits(), c.t0.to_bits(),
                        "first hop starts at the collective start");
                    for w in inside.windows(2) {
                        prop_assert_eq!(w[0].t1.to_bits(), w[1].t0.to_bits(),
                            "consecutive hops share endpoints bitwise");
                    }
                    prop_assert_eq!(inside.last().unwrap().t1.to_bits(), c.t1.to_bits(),
                        "last hop ends at the collective end");
                }
            }
        }
    }

    /// Two recorder-enabled runs are bit- and byte-identical.
    #[test]
    fn recorded_timelines_are_deterministic(
        n in 2usize..6,
        ops in prop::collection::vec(op(), 0..10),
    ) {
        let (ta, ca, ea) = run_script(n, &ops);
        let (tb, cb, eb) = run_script(n, &ops);
        prop_assert_eq!(ea.to_bits(), eb.to_bits(), "end times must be bit-identical");
        prop_assert_eq!(&ta, &tb, "timelines must be bit-identical");
        prop_assert_eq!(ca, cb, "Chrome traces must be byte-identical");
        prop_assert_eq!(ta.summary(), tb.summary(), "summaries must be byte-identical");
    }
}
