//! Property-based tests of block-cyclic index algebra and redistribution.

use grads_mpi::BlockCyclic;
use proptest::prelude::*;

fn dist() -> impl Strategy<Value = BlockCyclic> {
    (1usize..400, 1usize..16, 1usize..9).prop_map(|(n, b, p)| BlockCyclic::new(n, b, p))
}

proptest! {
    /// owner/local_index/global_index round-trip for every element.
    #[test]
    fn index_round_trip(d in dist()) {
        for g in 0..d.n {
            let r = d.owner(g);
            prop_assert!(r < d.p);
            let l = d.local_index(g);
            prop_assert_eq!(d.global_index(r, l), g);
            prop_assert!(l < d.local_len(r));
        }
    }

    /// Local lengths sum to the global length.
    #[test]
    fn local_lens_partition(d in dist()) {
        let total: usize = (0..d.p).map(|r| d.local_len(r)).sum();
        prop_assert_eq!(total, d.n);
    }

    /// `globals_of` enumerates exactly the owned indices, ascending.
    #[test]
    fn globals_of_is_sorted_ownership(d in dist()) {
        for r in 0..d.p {
            let gs: Vec<usize> = d.globals_of(r).collect();
            prop_assert_eq!(gs.len(), d.local_len(r));
            for w in gs.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            for &g in &gs {
                prop_assert_eq!(d.owner(g), r);
            }
        }
    }

    /// A redistribution plan covers every element exactly once with
    /// correct endpoints, for arbitrary (block, rank-count) changes.
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn redistribution_exact_cover(
        n in 1usize..300,
        b1 in 1usize..12,
        p1 in 1usize..7,
        b2 in 1usize..12,
        p2 in 1usize..7,
    ) {
        let from = BlockCyclic::new(n, b1, p1);
        let to = BlockCyclic::new(n, b2, p2);
        let plan = from.redistribute_plan(&to);
        let mut seen = vec![false; n];
        for e in &plan {
            for &(g0, len) in &e.ranges {
                prop_assert!(len > 0);
                for g in g0..g0 + len {
                    prop_assert!(!seen[g], "duplicate {g}");
                    seen[g] = true;
                    prop_assert_eq!(from.owner(g), e.src);
                    prop_assert_eq!(to.owner(g), e.dst);
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Plan entries are unique per (src, dst) pair.
    #[test]
    fn redistribution_pairs_unique(
        n in 1usize..200,
        b1 in 1usize..10,
        p1 in 1usize..6,
        p2 in 1usize..6,
    ) {
        let from = BlockCyclic::new(n, b1, p1);
        let to = BlockCyclic::new(n, b1, p2);
        let plan = from.redistribute_plan(&to);
        let mut pairs: Vec<(usize, usize)> = plan.iter().map(|e| (e.src, e.dst)).collect();
        let count = pairs.len();
        pairs.sort_unstable();
        pairs.dedup();
        prop_assert_eq!(pairs.len(), count);
    }
}
