//! SRS — the Stop Restart Software checkpointing library (§4.1.1).
//!
//! Applications call SRS to checkpoint named data, to poll whether the
//! rescheduler wants them to stop, and — in the restarted incarnation on a
//! possibly different number of processors — to read the data back. SRS
//! *"can transparently handle the redistribution of certain data
//! distributions (e.g., block cyclic) between different numbers of
//! processors (i.e., N to M processors)."*
//!
//! Checkpoint chunks are written to IBP depots on the writers' local disks
//! (cheap); restart reads pull exactly the byte ranges each new rank needs,
//! usually across the wide area (expensive) — the cost asymmetry behind
//! Figure 3.

use crate::ibp::IbpStorage;
use crate::rss::Rss;
use grads_mpi::BlockCyclic;
use grads_sim::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Metadata stored alongside a distributed checkpoint.
#[derive(Debug, Clone, Copy)]
struct DistMeta {
    dist: BlockCyclic,
    nominal_bytes: f64,
}

/// Application-side SRS handle: one per application run, shared by all
/// ranks and incarnations.
#[derive(Clone)]
pub struct Srs {
    /// The RSS control daemon.
    pub rss: Rss,
    /// The IBP storage fabric.
    pub ibp: IbpStorage,
    app: String,
    /// When set, all chunks go to the depot on this host instead of the
    /// writers' local disks — *stable storage* for fault-tolerant
    /// checkpointing (writes then pay the network; reads may be cheaper).
    depot: Option<HostId>,
}

impl Srs {
    /// Create an SRS handle for application `app` (the key namespace).
    pub fn new(app: &str, rss: Rss, ibp: IbpStorage) -> Self {
        Srs {
            rss,
            ibp,
            app: app.to_string(),
            depot: None,
        }
    }

    /// Route all checkpoint data to a fixed stable-storage depot host
    /// (required when writers' own hosts may fail).
    pub fn with_stable_depot(mut self, depot: HostId) -> Self {
        self.depot = Some(depot);
        self
    }

    fn meta_key(&self, name: &str) -> String {
        format!("{}/{}/dist", self.app, name)
    }

    fn chunk_key(&self, name: &str, rank: usize) -> String {
        format!("{}/{}/chunk/{}", self.app, name, rank)
    }

    fn value_key(&self, name: &str) -> String {
        format!("{}/{}/value", self.app, name)
    }

    /// Poll point: should this incarnation checkpoint its data and stop?
    pub fn should_stop(&self) -> bool {
        self.rss.stop_requested()
    }

    /// Checkpoint this rank's portion of a block-cyclically distributed
    /// `f64` array. `nominal_bytes` is the array's *global* nominal size
    /// on the wire (the real `data` may be a smaller stand-in; see
    /// DESIGN.md on nominal-vs-real problem sizes). Rank 0 also writes the
    /// distribution metadata. The chunk goes to the depot on the calling
    /// rank's own host.
    pub fn store_distributed(
        &self,
        ctx: &mut Ctx,
        name: &str,
        dist: BlockCyclic,
        rank: usize,
        data: Vec<f64>,
        nominal_bytes: f64,
    ) {
        assert_eq!(
            data.len(),
            dist.local_len(rank),
            "chunk length must match the distribution"
        );
        if rank == 0 {
            let home = self.depot.unwrap_or_else(|| ctx.host());
            self.ibp.store(
                ctx,
                home,
                &self.meta_key(name),
                64.0,
                Arc::new(DistMeta {
                    dist,
                    nominal_bytes,
                }),
            );
        }
        let frac = if dist.n > 0 {
            data.len() as f64 / dist.n as f64
        } else {
            0.0
        };
        let home = self.depot.unwrap_or_else(|| ctx.host());
        self.ibp.store(
            ctx,
            home,
            &self.chunk_key(name, rank),
            nominal_bytes * frac,
            Arc::new(data),
        );
    }

    /// Restart-side: read this rank's portion of a checkpointed array
    /// under a **new** distribution (possibly different rank count and
    /// block size), redistributing transparently. Pays wire cost only for
    /// the bytes actually needed from each old chunk. Returns `None` if
    /// the checkpoint does not exist.
    pub fn read_distributed(
        &self,
        ctx: &mut Ctx,
        name: &str,
        new_dist: BlockCyclic,
        new_rank: usize,
    ) -> Option<Vec<f64>> {
        let meta = {
            let m = self.ibp.retrieve(ctx, &self.meta_key(name))?;
            *m.downcast_ref::<DistMeta>().expect("dist metadata type")
        };
        let old = meta.dist;
        assert_eq!(old.n, new_dist.n, "redistribution must preserve length");
        let per_elem = if old.n > 0 {
            meta.nominal_bytes / old.n as f64
        } else {
            0.0
        };
        // Count needed elements per old rank, then fetch each chunk once.
        let my_len = new_dist.local_len(new_rank);
        let mut needed: HashMap<usize, usize> = HashMap::new();
        for l in 0..my_len {
            let g = new_dist.global_index(new_rank, l);
            *needed.entry(old.owner(g)).or_insert(0) += 1;
        }
        let mut chunks: HashMap<usize, Arc<Vec<f64>>> = HashMap::new();
        let mut old_ranks: Vec<usize> = needed.keys().copied().collect();
        old_ranks.sort_unstable();
        for r in old_ranks {
            let cost = needed[&r] as f64 * per_elem;
            let c = self
                .ibp
                .retrieve_partial(ctx, &self.chunk_key(name, r), cost)?;
            let v = c.downcast::<Vec<f64>>().expect("checkpoint chunk type");
            chunks.insert(r, v);
        }
        let mut out = Vec::with_capacity(my_len);
        for l in 0..my_len {
            let g = new_dist.global_index(new_rank, l);
            let r = old.owner(g);
            let ol = old.local_index(g);
            out.push(chunks[&r][ol]);
        }
        Some(out)
    }

    /// Checkpoint a single (replicated or rank-0) value.
    pub fn store_value<T: Send + Sync + 'static>(
        &self,
        ctx: &mut Ctx,
        name: &str,
        value: T,
        bytes: f64,
    ) {
        let home = self.depot.unwrap_or_else(|| ctx.host());
        self.ibp
            .store(ctx, home, &self.value_key(name), bytes, Arc::new(value));
    }

    /// Read back a checkpointed value.
    pub fn read_value<T: Clone + Send + Sync + 'static>(
        &self,
        ctx: &mut Ctx,
        name: &str,
    ) -> Option<T> {
        let v = self.ibp.retrieve(ctx, &self.value_key(name))?;
        Some(
            v.downcast_ref::<T>()
                .expect("checkpoint value type")
                .clone(),
        )
    }

    /// Does a distributed checkpoint with this name exist?
    pub fn has_checkpoint(&self, name: &str) -> bool {
        self.ibp.exists(&self.meta_key(name))
    }

    /// Drop all of this application's checkpoint data.
    pub fn cleanup(&self) -> usize {
        self.ibp.delete_prefix(&format!("{}/", self.app))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grads_sim::topology::{GridBuilder, HostSpec};
    use parking_lot::Mutex;

    fn grid(n_x: usize, n_y: usize) -> (Grid, Vec<HostId>, Vec<HostId>) {
        let mut b = GridBuilder::new();
        let x = b.cluster("X");
        b.local_link(x, 1e8, 1e-4);
        let xs = b.add_hosts(x, n_x, &HostSpec::with_speed(1e9));
        let y = b.cluster("Y");
        b.local_link(y, 1e8, 1e-4);
        let ys = b.add_hosts(y, n_y, &HostSpec::with_speed(1e9));
        b.connect(x, y, 1e6, 0.03);
        (b.build().unwrap(), xs, ys)
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn n_to_m_redistribution_preserves_data() {
        let (g, xs, ys) = grid(3, 5);
        let mut eng = Engine::new(g);
        let srs = Srs::new("qr", Rss::new(), IbpStorage::default());
        let n = 97usize;
        let old = BlockCyclic::new(n, 4, 3);
        let new = BlockCyclic::new(n, 4, 5);
        // Writers: 3 ranks on cluster X.
        for rank in 0..3 {
            let srs2 = srs.clone();
            eng.spawn(&format!("w{rank}"), xs[rank], move |ctx| {
                let data: Vec<f64> = old.globals_of(rank).map(|gl| gl as f64 * 1.5).collect();
                srs2.store_distributed(ctx, "A", old, rank, data, 8.0 * n as f64);
            });
        }
        // Readers: 5 ranks on cluster Y, starting after the writers.
        let ok = std::sync::Arc::new(Mutex::new(0usize));
        for rank in 0..5 {
            let srs2 = srs.clone();
            let ok2 = ok.clone();
            eng.spawn(&format!("r{rank}"), ys[rank], move |ctx| {
                ctx.sleep(1.0);
                let data = srs2.read_distributed(ctx, "A", new, rank).unwrap();
                for (l, v) in data.iter().enumerate() {
                    let gl = new.global_index(rank, l);
                    assert_eq!(*v, gl as f64 * 1.5);
                }
                *ok2.lock() += 1;
            });
        }
        eng.run();
        assert_eq!(*ok.lock(), 5);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn read_cost_scales_with_needed_bytes() {
        let (g, xs, ys) = grid(1, 2);
        let mut eng = Engine::new(g);
        let srs = Srs::new("app", Rss::new(), IbpStorage::default());
        let n = 1000usize;
        let old = BlockCyclic::new(n, 10, 1);
        let new = BlockCyclic::new(n, 10, 2);
        let srs_w = srs.clone();
        let nominal = 2e6; // 2 MB over a 1 MB/s WAN link
        eng.spawn("w", xs[0], move |ctx| {
            srs_w.store_distributed(ctx, "A", old, 0, vec![1.0; n], nominal);
        });
        // Each reader needs half the data -> ~1 s on the wire each, but
        // they share the WAN link -> ~2 s elapsed.
        for rank in 0..2 {
            let srs_r = srs.clone();
            eng.spawn(&format!("r{rank}"), ys[rank], move |ctx| {
                ctx.sleep(1.0);
                let t0 = ctx.now();
                let d = srs_r.read_distributed(ctx, "A", new, rank).unwrap();
                assert_eq!(d.len(), 500);
                let dt = ctx.now() - t0;
                ctx.trace("dt", dt);
            });
        }
        let r = eng.run();
        for (_, dt) in r.trace.series("dt") {
            assert!(dt > 0.9 && dt < 2.5, "dt = {dt}");
        }
    }

    #[test]
    fn value_round_trip_and_cleanup() {
        let (g, xs, _) = grid(1, 1);
        let mut eng = Engine::new(g);
        let srs = Srs::new("app", Rss::new(), IbpStorage::default());
        let srs2 = srs.clone();
        eng.spawn("w", xs[0], move |ctx| {
            srs2.store_value(ctx, "iter", 42u64, 8.0);
            let v: u64 = srs2.read_value(ctx, "iter").unwrap();
            ctx.trace("v", v as f64);
        });
        let r = eng.run();
        assert_eq!(r.trace.last_value("v"), Some(42.0));
        assert!(srs.cleanup() >= 1);
        assert!(!srs.has_checkpoint("iter"));
    }

    #[test]
    fn missing_checkpoint_is_none() {
        let (g, xs, _) = grid(1, 1);
        let mut eng = Engine::new(g);
        let srs = Srs::new("app", Rss::new(), IbpStorage::default());
        let srs2 = srs.clone();
        eng.spawn("r", xs[0], move |ctx| {
            let d = srs2.read_distributed(ctx, "nope", BlockCyclic::new(10, 2, 1), 0);
            ctx.trace("found", if d.is_some() { 1.0 } else { 0.0 });
        });
        let r = eng.run();
        assert_eq!(r.trace.last_value("found"), Some(0.0));
    }

    #[test]
    fn stop_flag_visible_through_srs() {
        let srs = Srs::new("app", Rss::new(), IbpStorage::default());
        assert!(!srs.should_stop());
        srs.rss.request_stop();
        assert!(srs.should_stop());
    }
}
