//! # grads-srs — Stop Restart Software + IBP storage + RSS daemon
//!
//! The stop/migrate/restart substrate of §4.1: applications checkpoint
//! named data through [`srs::Srs`] into [`ibp::IbpStorage`] depots on their
//! local disks, poll the [`rss::Rss`] daemon for stop requests raised by
//! the rescheduler, and — restarted on a different processor set — read
//! the data back with transparent N→M block-cyclic redistribution.

pub mod ibp;
pub mod rss;
pub mod srs;

pub use ibp::{IbpStorage, DEFAULT_DISK_BW};
pub use rss::Rss;
pub use srs::Srs;
