//! The Runtime Support System (RSS) daemon.
//!
//! *"An external component (e.g., the rescheduler) interacts with a daemon
//! called Runtime Support System (RSS). RSS exists for the duration of the
//! application execution and can span multiple migrations."* (§4.1.1)
//!
//! The RSS is the control plane of stop/restart migration: the rescheduler
//! raises a stop request; the application polls it at SRS checkpoint
//! points, writes its data, and exits; the restart incarnation finds the
//! checkpoints through the same RSS. An epoch counter distinguishes
//! incarnations.

use parking_lot::Mutex;
use std::sync::Arc;

struct Inner {
    stop_requested: bool,
    epoch: u64,
    /// Ranks that have acknowledged the stop in the current epoch.
    stop_acks: usize,
    /// Completion flag set by the application's final incarnation.
    app_complete: bool,
}

/// Shared handle to the RSS daemon state. Cloning shares the daemon.
#[derive(Clone)]
pub struct Rss {
    inner: Arc<Mutex<Inner>>,
}

impl Default for Rss {
    fn default() -> Self {
        Self::new()
    }
}

impl Rss {
    /// Start a fresh RSS (epoch 0, no stop pending).
    pub fn new() -> Self {
        Rss {
            inner: Arc::new(Mutex::new(Inner {
                stop_requested: false,
                epoch: 0,
                stop_acks: 0,
                app_complete: false,
            })),
        }
    }

    /// Rescheduler-side: ask the running application to checkpoint and
    /// stop at its next SRS poll point.
    pub fn request_stop(&self) {
        self.inner.lock().stop_requested = true;
    }

    /// Application-side: is a stop pending?
    pub fn stop_requested(&self) -> bool {
        self.inner.lock().stop_requested
    }

    /// Application-side: acknowledge the stop (each rank calls this once
    /// after writing its checkpoint data).
    pub fn ack_stop(&self) {
        self.inner.lock().stop_acks += 1;
    }

    /// Number of ranks that acknowledged the current stop.
    pub fn stop_acks(&self) -> usize {
        self.inner.lock().stop_acks
    }

    /// Restart-side: clear the stop flag and open a new epoch. Returns the
    /// new epoch number.
    pub fn begin_restart(&self) -> u64 {
        let mut i = self.inner.lock();
        i.stop_requested = false;
        i.stop_acks = 0;
        i.epoch += 1;
        i.epoch
    }

    /// Current incarnation number (0 for the original launch).
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Application-side: mark the whole computation finished.
    pub fn mark_complete(&self) {
        self.inner.lock().app_complete = true;
    }

    /// Has the application finished (across all incarnations)?
    pub fn is_complete(&self) -> bool {
        self.inner.lock().app_complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_protocol_round_trip() {
        let rss = Rss::new();
        assert!(!rss.stop_requested());
        rss.request_stop();
        assert!(rss.stop_requested());
        rss.ack_stop();
        rss.ack_stop();
        assert_eq!(rss.stop_acks(), 2);
        let e = rss.begin_restart();
        assert_eq!(e, 1);
        assert!(!rss.stop_requested());
        assert_eq!(rss.stop_acks(), 0);
    }

    #[test]
    fn epochs_accumulate_across_migrations() {
        let rss = Rss::new();
        assert_eq!(rss.epoch(), 0);
        rss.request_stop();
        rss.begin_restart();
        rss.request_stop();
        rss.begin_restart();
        assert_eq!(rss.epoch(), 2);
    }

    #[test]
    fn completion_flag() {
        let rss = Rss::new();
        assert!(!rss.is_complete());
        rss.mark_complete();
        assert!(rss.is_complete());
    }

    #[test]
    fn clones_share_state() {
        let rss = Rss::new();
        let rss2 = rss.clone();
        rss.request_stop();
        assert!(rss2.stop_requested());
    }
}
