//! Internet Backplane Protocol (IBP) analog: named storage depots on grid
//! hosts.
//!
//! SRS stores checkpoint data in IBP depots (§4.1.1). The paper's key
//! observation — checkpoint *writes* go to depots on local disks and are
//! cheap, while restart *reads* cross the Internet and dominate migration
//! cost — falls straight out of this model: a store to the local depot
//! costs only disk bandwidth, while a retrieve from a remote depot pays
//! the WAN transfer too.

use grads_sim::prelude::*;
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

/// Default depot disk bandwidth: 30 MB/s (2003-era local disk).
pub const DEFAULT_DISK_BW: f64 = 30e6;

struct Item {
    home: HostId,
    bytes: f64,
    data: Arc<dyn Any + Send + Sync>,
}

struct Inner {
    items: HashMap<String, Item>,
    disk_bw: f64,
}

/// A shared handle to the grid's IBP storage fabric. Cloning shares the
/// underlying depots.
#[derive(Clone)]
pub struct IbpStorage {
    inner: Arc<Mutex<Inner>>,
}

impl Default for IbpStorage {
    fn default() -> Self {
        Self::new(DEFAULT_DISK_BW)
    }
}

impl IbpStorage {
    /// New storage fabric with the given depot disk bandwidth (bytes/s).
    pub fn new(disk_bw: f64) -> Self {
        assert!(disk_bw > 0.0, "disk bandwidth must be positive");
        IbpStorage {
            inner: Arc::new(Mutex::new(Inner {
                items: HashMap::new(),
                disk_bw,
            })),
        }
    }

    /// Store `data` under `key` in the depot on `depot` (typically the
    /// caller's own host — "IBP storage on local disks"). Charges disk
    /// time plus, when the depot is remote, the network transfer.
    /// Overwrites any previous item under the key.
    pub fn store(
        &self,
        ctx: &mut Ctx,
        depot: HostId,
        key: &str,
        bytes: f64,
        data: Arc<dyn Any + Send + Sync>,
    ) {
        if depot != ctx.host() {
            ctx.transfer(depot, bytes);
        }
        let disk_bw = self.inner.lock().disk_bw;
        ctx.sleep(bytes / disk_bw);
        self.inner.lock().items.insert(
            key.to_string(),
            Item {
                home: depot,
                bytes,
                data,
            },
        );
    }

    /// Retrieve the item under `key`, paying disk plus (for remote depots)
    /// WAN transfer for the item's full size.
    pub fn retrieve(&self, ctx: &mut Ctx, key: &str) -> Option<Arc<dyn Any + Send + Sync>> {
        let bytes = self.inner.lock().items.get(key).map(|i| i.bytes)?;
        self.retrieve_partial(ctx, key, bytes)
    }

    /// Retrieve the item under `key`, paying for only `cost_bytes` on the
    /// wire (IBP supports byte-range reads; SRS uses this when a restart
    /// rank needs only part of another rank's checkpoint chunk).
    pub fn retrieve_partial(
        &self,
        ctx: &mut Ctx,
        key: &str,
        cost_bytes: f64,
    ) -> Option<Arc<dyn Any + Send + Sync>> {
        let (home, data, disk_bw) = {
            let inner = self.inner.lock();
            let item = inner.items.get(key)?;
            (item.home, item.data.clone(), inner.disk_bw)
        };
        ctx.sleep(cost_bytes / disk_bw);
        if home != ctx.host() {
            // The route is symmetric, so modelling the depot→reader flow
            // as a reader→depot transfer costs the same.
            ctx.transfer(home, cost_bytes);
        }
        Some(data)
    }

    /// True if an item exists under `key` (no simulated cost; metadata
    /// lookups are negligible).
    pub fn exists(&self, key: &str) -> bool {
        self.inner.lock().items.contains_key(key)
    }

    /// Stored size of an item, if present.
    pub fn size_of(&self, key: &str) -> Option<f64> {
        self.inner.lock().items.get(key).map(|i| i.bytes)
    }

    /// Depot host of an item, if present.
    pub fn home_of(&self, key: &str) -> Option<HostId> {
        self.inner.lock().items.get(key).map(|i| i.home)
    }

    /// Delete an item; returns whether it existed.
    pub fn delete(&self, key: &str) -> bool {
        self.inner.lock().items.remove(key).is_some()
    }

    /// Delete every item whose key starts with `prefix`; returns the count.
    pub fn delete_prefix(&self, prefix: &str) -> usize {
        let mut inner = self.inner.lock();
        let keys: Vec<String> = inner
            .items
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        for k in &keys {
            inner.items.remove(k);
        }
        keys.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grads_sim::topology::{GridBuilder, HostSpec};

    fn grid2() -> (Grid, Vec<HostId>) {
        let mut b = GridBuilder::new();
        let x = b.cluster("X");
        b.local_link(x, 1e6, 0.01);
        let h0 = b.add_host(x, &HostSpec::with_speed(1e9));
        let y = b.cluster("Y");
        b.local_link(y, 1e6, 0.01);
        let h1 = b.add_host(y, &HostSpec::with_speed(1e9));
        b.connect(x, y, 1e6, 0.03);
        (b.build().unwrap(), vec![h0, h1])
    }

    #[test]
    fn local_store_costs_only_disk() {
        let (g, hs) = grid2();
        let mut eng = Engine::new(g);
        let ibp = IbpStorage::new(30e6);
        let ibp2 = ibp.clone();
        let h0 = hs[0];
        eng.spawn("w", h0, move |ctx| {
            ibp2.store(ctx, h0, "ckpt", 30e6, Arc::new(vec![1.0f64]));
            let t = ctx.now();
            ctx.trace("t", t);
        });
        let r = eng.run();
        assert!((r.trace.last_value("t").unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn remote_retrieve_pays_wan() {
        let (g, hs) = grid2();
        let mut eng = Engine::new(g);
        let ibp = IbpStorage::new(30e6);
        let (h0, h1) = (hs[0], hs[1]);
        let ibp_w = ibp.clone();
        eng.spawn("writer", h0, move |ctx| {
            ibp_w.store(ctx, h0, "ckpt", 1e6, Arc::new(vec![7.0f64; 4]));
        });
        let ibp_r = ibp.clone();
        eng.spawn("reader", h1, move |ctx| {
            ctx.sleep(2.0); // let the writer finish
            let t0 = ctx.now();
            let data = ibp_r.retrieve(ctx, "ckpt").unwrap();
            let v = data.downcast_ref::<Vec<f64>>().unwrap();
            ctx.trace("v", v[0]);
            let t = ctx.now() - t0;
            ctx.trace("dt", t);
        });
        let r = eng.run();
        assert_eq!(r.trace.last_value("v"), Some(7.0));
        // ~1/30 s disk + 1 s WAN (1 MB at 1 MB/s) + 50 ms latency.
        let dt = r.trace.last_value("dt").unwrap();
        assert!(dt > 1.0 && dt < 1.2, "dt = {dt}");
    }

    #[test]
    fn partial_retrieve_costs_less() {
        let (g, hs) = grid2();
        let mut eng = Engine::new(g);
        let ibp = IbpStorage::new(30e6);
        let (h0, h1) = (hs[0], hs[1]);
        let ibp_w = ibp.clone();
        eng.spawn("writer", h0, move |ctx| {
            ibp_w.store(ctx, h0, "ckpt", 2e6, Arc::new(0u8));
        });
        let ibp_r = ibp.clone();
        eng.spawn("reader", h1, move |ctx| {
            ctx.sleep(2.0);
            let t0 = ctx.now();
            ibp_r.retrieve_partial(ctx, "ckpt", 0.5e6).unwrap();
            let t = ctx.now() - t0;
            ctx.trace("dt", t);
        });
        let r = eng.run();
        let dt = r.trace.last_value("dt").unwrap();
        assert!(dt > 0.5 && dt < 0.65, "dt = {dt}");
    }

    #[test]
    fn exists_delete_and_metadata() {
        let (g, hs) = grid2();
        let mut eng = Engine::new(g);
        let ibp = IbpStorage::default();
        let ibp2 = ibp.clone();
        let h0 = hs[0];
        eng.spawn("w", h0, move |ctx| {
            ibp2.store(ctx, h0, "a/1", 10.0, Arc::new(1u8));
            ibp2.store(ctx, h0, "a/2", 20.0, Arc::new(2u8));
            ibp2.store(ctx, h0, "b/1", 30.0, Arc::new(3u8));
        });
        eng.run();
        assert!(ibp.exists("a/1"));
        assert_eq!(ibp.size_of("a/2"), Some(20.0));
        assert_eq!(ibp.home_of("b/1"), Some(hs[0]));
        assert_eq!(ibp.delete_prefix("a/"), 2);
        assert!(!ibp.exists("a/1"));
        assert!(ibp.exists("b/1"));
        assert!(ibp.delete("b/1"));
        assert!(!ibp.delete("b/1"));
    }

    #[test]
    fn missing_key_returns_none() {
        let (g, hs) = grid2();
        let mut eng = Engine::new(g);
        let ibp = IbpStorage::default();
        let ibp2 = ibp.clone();
        eng.spawn("r", hs[0], move |ctx| {
            let found = ibp2.retrieve(ctx, "nope").is_some();
            ctx.trace("found", if found { 1.0 } else { 0.0 });
        });
        let r = eng.run();
        assert_eq!(r.trace.last_value("found"), Some(0.0));
    }
}
