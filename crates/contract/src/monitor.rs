//! The in-simulation contract-monitor process.
//!
//! Binder-inserted sensors report phase durations into each rank's
//! [`RankStats`]; this monitor polls those sensor channels periodically
//! (the real GrADS monitor took periodic data from Autopilot sensors),
//! feeds them to the [`ContractMonitor`] state machine, and invokes a
//! rescheduler callback on violations.

use crate::contract::{ContractMonitor, Outcome, Violation};
use grads_mpi::RankStats;
use grads_obs::{DecisionAction, DecisionKind, Obs};
use grads_sim::prelude::*;
use parking_lot::Mutex;
use std::sync::Arc;

/// What the rescheduler did about a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Response {
    /// Not profitable: the monitor relaxes its tolerance limits
    /// (the paper's "adjusts its tolerance limits to new values").
    Declined,
    /// Stop/restart migration initiated: this monitor instance ends (a new
    /// one is launched with the restarted application).
    Migrated,
    /// Process swap initiated: monitoring continues with history cleared.
    Swapped,
}

/// Rescheduler hook invoked on each violation.
pub type ViolationHandler = Arc<dyn Fn(&mut Ctx, &Violation) -> Response + Send + Sync>;

/// Predicate that tells the monitor the application has finished.
pub type DonePredicate = Arc<dyn Fn() -> bool + Send + Sync>;

/// Run the contract monitor loop inside a simulated process.
///
/// Every `period` virtual seconds it drains new sensor reports from all
/// ranks' `phase_times`, updates the contract state machine, and reacts:
/// violations go to `on_violation`; renegotiations and violations are also
/// emitted on the trace (`"contract_violation"` / `"contract_renegotiated"`
/// labels) for the figure harnesses.
pub fn run_contract_monitor(
    ctx: &mut Ctx,
    stats: &[Arc<Mutex<RankStats>>],
    monitor: &mut ContractMonitor,
    period: f64,
    done: DonePredicate,
    on_violation: ViolationHandler,
) {
    run_contract_monitor_obs(
        ctx,
        stats,
        monitor,
        period,
        done,
        on_violation,
        &Obs::disabled(),
    );
}

/// [`run_contract_monitor`] with an observability sink attached.
///
/// Identical monitoring behavior — the plain variant delegates here with a
/// disabled handle — plus, when `obs` is enabled, a typed decision-event
/// stream (`MonitorPoll`, `ContractEval`, `Renegotiated`,
/// `ViolationDetected`, `Decision`) stamped with `ctx.now()` virtual times,
/// and `contract.*` counters. Recording never sleeps, never reads time on
/// its own, and never branches the control flow, so an obs-enabled run is
/// bit-identical to a disabled one (see `tests/obs_determinism.rs`).
#[allow(clippy::too_many_arguments)]
pub fn run_contract_monitor_obs(
    ctx: &mut Ctx,
    stats: &[Arc<Mutex<RankStats>>],
    monitor: &mut ContractMonitor,
    period: f64,
    done: DonePredicate,
    on_violation: ViolationHandler,
    obs: &Obs,
) {
    let mut cursors = vec![0usize; stats.len()];
    while !done() {
        ctx.sleep(period);
        let mut reports: Vec<(String, f64)> = Vec::new();
        for (r, s) in stats.iter().enumerate() {
            let st = s.lock();
            for entry in &st.phase_times[cursors[r]..] {
                reports.push(entry.clone());
            }
            cursors[r] = st.phase_times.len();
        }
        obs.counter_add("contract.polls", 1);
        obs.counter_add("contract.reports", reports.len() as u64);
        obs.event_with(ctx.now(), || DecisionKind::MonitorPoll {
            reports: reports.len(),
        });
        for (phase, dt) in reports {
            obs.event_with(ctx.now(), || {
                let predicted = monitor.contract.predicted.get(&phase).copied();
                DecisionKind::ContractEval {
                    phase: phase.clone(),
                    ratio: predicted.map_or(f64::NAN, |p| dt / p),
                }
            });
            match monitor.observe(&phase, dt) {
                Outcome::Ok => {}
                Outcome::Renegotiated { new_upper, .. } => {
                    ctx.trace("contract_renegotiated", new_upper);
                    obs.counter_add("contract.renegotiations", 1);
                    obs.event(ctx.now(), DecisionKind::Renegotiated { new_upper });
                }
                Outcome::Violation(v) => {
                    ctx.trace("contract_violation", v.avg_ratio);
                    obs.counter_add("contract.violations", 1);
                    obs.event_with(ctx.now(), || DecisionKind::ViolationDetected {
                        phase: v.phase.clone(),
                        avg_ratio: v.avg_ratio,
                        score: v.score,
                    });
                    let resp = on_violation(ctx, &v);
                    let action = match resp {
                        Response::Declined => DecisionAction::Ignore,
                        Response::Migrated => DecisionAction::Migrate,
                        Response::Swapped => DecisionAction::Swap,
                    };
                    obs.counter_add(
                        match action {
                            DecisionAction::Migrate => "contract.decisions_migrate",
                            DecisionAction::Swap => "contract.decisions_swap",
                            DecisionAction::Ignore => "contract.decisions_ignore",
                        },
                        1,
                    );
                    obs.event(ctx.now(), DecisionKind::Decision { action });
                    match resp {
                        Response::Declined => monitor.relax(),
                        Response::Migrated => return,
                        Response::Swapped => {
                            let c = monitor.contract.clone();
                            monitor.renew(c);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::Contract;
    use grads_sim::topology::{GridBuilder, HostSpec};

    #[test]
    fn monitor_detects_load_induced_violation() {
        let mut b = GridBuilder::new();
        let c = b.cluster("X");
        let hs = b.add_hosts(c, 2, &HostSpec::with_speed(1e9));
        let mut eng = Engine::new(b.build().unwrap());
        let stats = Arc::new(Mutex::new(RankStats::default()));
        // Application: 40 iterations of 0.1 s predicted work; host gets
        // loaded at t = 1.0 so iterations take 0.2 s after that.
        let app_stats = stats.clone();
        let app_done = Arc::new(Mutex::new(false));
        let app_done2 = app_done.clone();
        eng.spawn("app", hs[0], move |ctx| {
            for _ in 0..40 {
                let t0 = ctx.now();
                ctx.compute(1e8);
                let dt = ctx.now() - t0;
                app_stats.lock().record_phase("iter", dt);
            }
            *app_done2.lock() = true;
        });
        eng.add_load_window(hs[0], 1.0, None, 1.0);
        // Monitor on the other host.
        let violated = Arc::new(Mutex::new(Vec::<f64>::new()));
        let violated2 = violated.clone();
        let mstats = vec![stats];
        let done: DonePredicate = Arc::new(move || *app_done.lock());
        eng.spawn("monitor", hs[1], move |ctx| {
            let mut mon = ContractMonitor::new(Contract::single_phase("iter", 0.1, 1.5, 0.5, 3));
            let handler: ViolationHandler = Arc::new(move |_ctx, v| {
                violated2.lock().push(v.avg_ratio);
                Response::Declined
            });
            run_contract_monitor(ctx, &mstats, &mut mon, 0.25, done, handler);
        });
        let r = eng.run();
        let vs = violated.lock();
        assert!(!vs.is_empty(), "violation expected under load");
        assert!(vs[0] > 1.5);
        assert!(!r.trace.series("contract_violation").is_empty());
        // After Declined + relax, violations should not repeat forever:
        // far fewer violations than iterations.
        assert!(
            vs.len() < 10,
            "relaxation should damp repeats: {}",
            vs.len()
        );
    }

    #[test]
    fn monitor_exits_when_app_done() {
        let mut b = GridBuilder::new();
        let c = b.cluster("X");
        let hs = b.add_hosts(c, 1, &HostSpec::with_speed(1e9));
        let mut eng = Engine::new(b.build().unwrap());
        let done = Arc::new(Mutex::new(false));
        let done2 = done.clone();
        eng.spawn("app", hs[0], move |ctx| {
            ctx.sleep(1.0);
            *done2.lock() = true;
        });
        eng.spawn("monitor", hs[0], move |ctx| {
            let mut mon = ContractMonitor::new(Contract::single_phase("iter", 1.0, 1.5, 0.5, 3));
            let pred: DonePredicate = Arc::new(move || *done.lock());
            let handler: ViolationHandler = Arc::new(|_, _| Response::Declined);
            run_contract_monitor(ctx, &[], &mut mon, 0.5, pred, handler);
        });
        let r = eng.run();
        assert_eq!(r.completed.len(), 2);
        assert!(r.unfinished.is_empty());
    }

    #[test]
    fn migration_response_stops_monitor() {
        let mut b = GridBuilder::new();
        let c = b.cluster("X");
        let hs = b.add_hosts(c, 1, &HostSpec::with_speed(1e9));
        let mut eng = Engine::new(b.build().unwrap());
        let stats = Arc::new(Mutex::new(RankStats::default()));
        let app_stats = stats.clone();
        eng.spawn("app", hs[0], move |ctx| {
            for _ in 0..20 {
                ctx.sleep(0.1);
                app_stats.lock().record_phase("iter", 0.5); // way over
            }
        });
        eng.spawn("monitor", hs[0], move |ctx| {
            let mut mon = ContractMonitor::new(Contract::single_phase("iter", 0.1, 1.5, 0.5, 2));
            let pred: DonePredicate = Arc::new(|| false); // never "done"
            let handler: ViolationHandler = Arc::new(|_, _| Response::Migrated);
            run_contract_monitor(ctx, &[stats], &mut mon, 0.3, pred, handler);
            let t = ctx.now();
            ctx.trace("monitor_exit", t);
        });
        let r = eng.run();
        // Monitor exited long before the app's 2.0 s end despite the
        // never-done predicate, because the handler reported migration.
        assert!(r.trace.last_value("monitor_exit").unwrap() < 1.0);
    }
}
