//! Performance contracts and the adaptive contract monitor (§1, §4.1.1).
//!
//! A contract predicts how long each instrumented application phase should
//! take on the scheduled resources. The monitor compares each sensor
//! report against the prediction:
//!
//! *"The contract monitor compares the actual execution times with
//! predicted ones and calculates the ratio. ... When a given ratio is
//! greater than the upper tolerance limit, the contract monitor calculates
//! the average of the computed ratios. If the average is greater than the
//! upper tolerance limit, it contacts the rescheduler, requesting that the
//! application be migrated. If the rescheduler chooses not to migrate the
//! application, the contract monitor adjusts its tolerance limits to new
//! values. Similarly, when a given ratio is less than the lower tolerance
//! limit, the contract monitor ... lowers the tolerance limits."*

use crate::fuzzy::{violation_engine, FuzzyEngine};
use std::collections::{HashMap, VecDeque};

/// A performance contract: per-phase predicted durations plus tolerance
/// limits on the actual/predicted ratio.
#[derive(Debug, Clone)]
pub struct Contract {
    /// Predicted duration of each monitored phase, seconds.
    pub predicted: HashMap<String, f64>,
    /// Violation threshold on the ratio (e.g. 1.5 = 50% slower than
    /// predicted).
    pub upper_tolerance: f64,
    /// Renegotiation threshold for faster-than-predicted execution.
    pub lower_tolerance: f64,
    /// Number of recent ratios averaged before declaring a violation.
    pub window: usize,
}

impl Contract {
    /// Contract for a single repeated phase (the common case: one
    /// iteration of an iterative application).
    pub fn single_phase(name: &str, predicted: f64, upper: f64, lower: f64, window: usize) -> Self {
        assert!(predicted > 0.0, "prediction must be positive");
        assert!(upper > 1.0 && lower < 1.0, "tolerances must bracket 1.0");
        assert!(window >= 1);
        let mut p = HashMap::new();
        p.insert(name.to_string(), predicted);
        Contract {
            predicted: p,
            upper_tolerance: upper,
            lower_tolerance: lower,
            window,
        }
    }
}

/// Outcome of one sensor observation.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Within the tolerance band.
    Ok,
    /// Average ratio exceeded the upper limit: request rescheduling.
    Violation(Violation),
    /// Average ratio below the lower limit: the contract was pessimistic;
    /// the monitor tightened its limits.
    Renegotiated {
        /// The tightened upper tolerance limit.
        new_upper: f64,
        /// The tightened lower tolerance limit.
        new_lower: f64,
    },
}

/// Details handed to the rescheduler on a violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Phase that violated.
    pub phase: String,
    /// Average actual/predicted ratio over the window.
    pub avg_ratio: f64,
    /// Fuzzy violation score in `[0, 1]`.
    pub score: f64,
}

/// The contract monitor: consumes sensor reports, tracks ratio history,
/// detects violations with the fuzzy engine, and adapts its tolerance
/// limits.
#[derive(Debug, Clone)]
pub struct ContractMonitor {
    /// The active contract (limits mutate as the monitor adapts).
    pub contract: Contract,
    ratios: HashMap<String, VecDeque<f64>>,
    engine: FuzzyEngine,
    /// Total violations raised.
    pub violations: u64,
    /// Total observations consumed.
    pub observations: u64,
}

impl ContractMonitor {
    /// Monitor a contract.
    pub fn new(contract: Contract) -> Self {
        let engine = violation_engine(contract.upper_tolerance);
        ContractMonitor {
            contract,
            ratios: HashMap::new(),
            engine,
            violations: 0,
            observations: 0,
        }
    }

    fn avg_ratio(&self, phase: &str) -> f64 {
        let w = &self.ratios[phase];
        w.iter().sum::<f64>() / w.len() as f64
    }

    /// Consume one sensor report: `actual` seconds for `phase`.
    pub fn observe(&mut self, phase: &str, actual: f64) -> Outcome {
        let Some(&predicted) = self.contract.predicted.get(phase) else {
            return Outcome::Ok; // unmonitored phase
        };
        self.observations += 1;
        let ratio = actual / predicted;
        let window = self.ratios.entry(phase.to_string()).or_default();
        window.push_back(ratio);
        if window.len() > self.contract.window {
            window.pop_front();
        }
        if ratio > self.contract.upper_tolerance {
            let avg = self.avg_ratio(phase);
            if avg > self.contract.upper_tolerance {
                let mut inputs = HashMap::new();
                inputs.insert("ratio".to_string(), avg);
                let score = self.engine.infer(&inputs).unwrap_or(1.0);
                self.violations += 1;
                return Outcome::Violation(Violation {
                    phase: phase.to_string(),
                    avg_ratio: avg,
                    score,
                });
            }
        } else if ratio < self.contract.lower_tolerance {
            let avg = self.avg_ratio(phase);
            if avg < self.contract.lower_tolerance {
                // Execution is consistently faster than predicted: tighten
                // the band around the observed level so later slowdowns
                // are still caught.
                let new_upper = (self.contract.upper_tolerance * 0.5
                    + avg * self.contract.upper_tolerance * 0.5)
                    .max(avg * 1.2)
                    .max(1.05);
                let new_lower = (self.contract.lower_tolerance * avg).max(0.01);
                self.contract.upper_tolerance = new_upper;
                self.contract.lower_tolerance = new_lower;
                self.engine = violation_engine(new_upper);
                return Outcome::Renegotiated {
                    new_upper,
                    new_lower,
                };
            }
        }
        Outcome::Ok
    }

    /// Called when the rescheduler declines to migrate after a violation:
    /// relax the limits so the monitor does not immediately re-raise the
    /// same violation.
    pub fn relax(&mut self) {
        let phase_avgs: Vec<f64> = self
            .ratios
            .values()
            .filter(|w| !w.is_empty())
            .map(|w| w.iter().sum::<f64>() / w.len() as f64)
            .collect();
        let worst = phase_avgs.iter().fold(1.0f64, |a, &b| a.max(b));
        self.contract.upper_tolerance = self.contract.upper_tolerance.max(worst * 1.1);
        self.engine = violation_engine(self.contract.upper_tolerance);
    }

    /// Replace the contract after a successful migration (new resources,
    /// new predictions) and clear the ratio history.
    pub fn renew(&mut self, contract: Contract) {
        self.engine = violation_engine(contract.upper_tolerance);
        self.contract = contract;
        self.ratios.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(upper: f64, lower: f64, window: usize) -> ContractMonitor {
        ContractMonitor::new(Contract::single_phase("iter", 1.0, upper, lower, window))
    }

    #[test]
    fn within_band_is_ok() {
        let mut m = monitor(1.5, 0.7, 3);
        for _ in 0..10 {
            assert_eq!(m.observe("iter", 1.1), Outcome::Ok);
        }
        assert_eq!(m.violations, 0);
    }

    #[test]
    fn single_spike_does_not_violate() {
        let mut m = monitor(1.5, 0.7, 4);
        m.observe("iter", 1.0);
        m.observe("iter", 1.0);
        m.observe("iter", 1.0);
        // One bad ratio: the window average (1.75 over these 4 would be
        // (1+1+1+4)/4 = 1.75 > 1.5) — choose a spike small enough that the
        // average stays under the limit.
        assert_eq!(m.observe("iter", 1.6), Outcome::Ok);
    }

    #[test]
    fn sustained_slowdown_violates() {
        let mut m = monitor(1.5, 0.7, 3);
        m.observe("iter", 1.0);
        let mut got = None;
        for _ in 0..5 {
            if let Outcome::Violation(v) = m.observe("iter", 2.5) {
                got = Some(v);
                break;
            }
        }
        let v = got.expect("sustained slowdown must violate");
        assert!(v.avg_ratio > 1.5);
        assert!(v.score > 0.5);
        assert_eq!(v.phase, "iter");
    }

    #[test]
    fn relax_suppresses_repeat_violation() {
        let mut m = monitor(1.5, 0.7, 2);
        for _ in 0..3 {
            m.observe("iter", 2.0);
        }
        assert!(m.violations >= 1);
        m.relax();
        let v_before = m.violations;
        // Same level no longer violates after relaxing.
        for _ in 0..5 {
            assert_eq!(m.observe("iter", 2.0), Outcome::Ok);
        }
        assert_eq!(m.violations, v_before);
        // But a further slowdown does.
        let mut violated = false;
        for _ in 0..5 {
            if matches!(m.observe("iter", 3.5), Outcome::Violation(_)) {
                violated = true;
            }
        }
        assert!(violated);
    }

    #[test]
    fn consistently_fast_renegotiates_downward() {
        let mut m = monitor(1.5, 0.7, 3);
        let mut renegotiated = false;
        for _ in 0..6 {
            if let Outcome::Renegotiated {
                new_upper,
                new_lower,
            } = m.observe("iter", 0.4)
            {
                assert!(new_upper < 1.5);
                assert!(new_lower < 0.7);
                renegotiated = true;
                break;
            }
        }
        assert!(renegotiated);
    }

    #[test]
    fn unmonitored_phase_ignored() {
        let mut m = monitor(1.5, 0.7, 3);
        assert_eq!(m.observe("io", 100.0), Outcome::Ok);
        assert_eq!(m.observations, 0);
    }

    #[test]
    fn renew_resets_history() {
        let mut m = monitor(1.5, 0.7, 2);
        m.observe("iter", 2.0);
        m.observe("iter", 2.0);
        m.renew(Contract::single_phase("iter", 2.0, 1.5, 0.7, 2));
        // Ratio of 2.0 s against new prediction 2.0 s is 1.0: fine.
        assert_eq!(m.observe("iter", 2.0), Outcome::Ok);
    }

    #[test]
    fn window_bounds_history() {
        let mut m = monitor(1.5, 0.7, 2);
        // Two old bad ratios fall out of the window once good ones arrive.
        m.observe("iter", 3.0);
        m.observe("iter", 3.0);
        m.observe("iter", 1.0);
        m.observe("iter", 1.0);
        assert_eq!(m.observe("iter", 1.0), Outcome::Ok);
    }
}
