//! # grads-contract — performance contracts and the contract monitor
//!
//! Performance contracts *"specify an agreement between application demands
//! and resource capabilities"*; the contract monitor compares sensor
//! reports against predictions, decides with a fuzzy-logic engine
//! ([`fuzzy`], after Autopilot) whether the contract is violated, adapts
//! its tolerance limits when the rescheduler declines to act, and
//! renegotiates when predictions prove pessimistic ([`contract`]).
//! [`monitor`] packages the periodic in-simulation monitoring loop.
//!
//! Paper map: contracts and violation detection are §3's rescheduling
//! substrate; the fuzzy-logic violation decision follows the Autopilot
//! approach the paper builds on. Observability variants
//! ([`run_contract_monitor_obs`]) additionally emit `grads-obs` decision
//! events so the monitor → detect → decide → actuate path is measurable.

#![warn(missing_docs)]

pub mod actuator;
pub mod contract;
pub mod fuzzy;
pub mod monitor;
pub mod viewer;

pub use actuator::{poll_period_controller, ActuatorBus, FuzzyController};
pub use contract::{Contract, ContractMonitor, Outcome, Violation};
pub use fuzzy::{violation_engine, FuzzyEngine, Membership};
pub use monitor::{
    run_contract_monitor, run_contract_monitor_obs, DonePredicate, Response, ViolationHandler,
};
pub use viewer::{control_events, render_timeline, TimelineEvent};
