//! The Contract Viewer analog.
//!
//! GrADS shipped *"a Java-based Contract Viewer GUI to visualize the
//! performance contract validation activity in real-time"* (§1). This is
//! the headless equivalent: it renders a run's trace as an ASCII timeline
//! — contract violations, renegotiations, swaps, load changes, host
//! failures and recoveries — so harness output can show *when* the control
//! loop acted.

use grads_sim::trace::{Trace, TraceKind};

/// One renderable event.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Virtual time.
    pub t: f64,
    /// Single-character marker used on the timeline.
    pub marker: char,
    /// Legend label.
    pub label: String,
}

/// Extract the control-loop events from a trace.
pub fn control_events(trace: &Trace) -> Vec<TimelineEvent> {
    let mut out = Vec::new();
    for r in &trace.records {
        let ev = match &r.kind {
            TraceKind::LoadChange { host, total } => Some(TimelineEvent {
                t: r.t,
                marker: if *total > 0.0 { 'L' } else { 'l' },
                label: format!("load on {host} -> {total}"),
            }),
            TraceKind::HostFail { host } => Some(TimelineEvent {
                t: r.t,
                marker: 'X',
                label: format!("host {host} failed"),
            }),
            TraceKind::Custom { label, value } => match label.as_ref() {
                "contract_violation" => Some(TimelineEvent {
                    t: r.t,
                    marker: 'V',
                    label: format!("contract violation (ratio {value:.2})"),
                }),
                "contract_renegotiated" => Some(TimelineEvent {
                    t: r.t,
                    marker: 'R',
                    label: format!("contract renegotiated (upper {value:.2})"),
                }),
                "swap" => Some(TimelineEvent {
                    t: r.t,
                    marker: 'S',
                    label: format!("swap of logical rank {value:.0}"),
                }),
                "recovery" => Some(TimelineEvent {
                    t: r.t,
                    marker: 'F',
                    label: format!("failure recovery #{value:.0}"),
                }),
                _ => None,
            },
            _ => None,
        };
        if let Some(e) = ev {
            out.push(e);
        }
    }
    out
}

/// Render the control events of a trace as a fixed-width ASCII timeline
/// plus a chronological legend. Returns an empty string when the trace has
/// no control events.
pub fn render_timeline(trace: &Trace, width: usize) -> String {
    let events = control_events(trace);
    if events.is_empty() {
        return String::new();
    }
    let width = width.max(20);
    let t_end = trace
        .records
        .last()
        .map(|r| r.t)
        .unwrap_or(0.0)
        .max(events.last().map(|e| e.t).unwrap_or(0.0))
        .max(1e-9);
    let mut lane: Vec<char> = vec!['-'; width];
    for e in &events {
        let pos = ((e.t / t_end) * (width as f64 - 1.0)).round() as usize;
        let pos = pos.min(width - 1);
        // Later events overwrite; collisions show the most recent marker.
        lane[pos] = e.marker;
    }
    let mut out = String::new();
    out.push_str("contract activity  0s ");
    out.extend(lane.iter());
    out.push_str(&format!(" {t_end:.0}s\n"));
    for e in &events {
        out.push_str(&format!("  [{}] t={:>8.1}  {}\n", e.marker, e.t, e.label));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use grads_sim::prelude::*;
    use grads_sim::trace::TraceRecord;

    fn trace_with(events: &[(f64, TraceKind)]) -> Trace {
        let mut t = Trace::default();
        for (time, kind) in events {
            t.records.push(TraceRecord {
                t: *time,
                pid: None,
                kind: kind.clone(),
            });
        }
        t
    }

    #[test]
    fn extracts_control_events_in_order() {
        let tr = trace_with(&[
            (
                10.0,
                TraceKind::LoadChange {
                    host: HostId(0),
                    total: 2.0,
                },
            ),
            (
                20.0,
                TraceKind::Custom {
                    label: "contract_violation".into(),
                    value: 2.5,
                },
            ),
            (
                30.0,
                TraceKind::Custom {
                    label: "swap".into(),
                    value: 1.0,
                },
            ),
            (
                40.0,
                TraceKind::Custom {
                    label: "iteration".into(), // not a control event
                    value: 7.0,
                },
            ),
        ]);
        let evs = control_events(&tr);
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].marker, 'L');
        assert_eq!(evs[1].marker, 'V');
        assert_eq!(evs[2].marker, 'S');
    }

    #[test]
    fn timeline_renders_markers_and_legend() {
        let tr = trace_with(&[
            (
                0.0,
                TraceKind::Custom {
                    label: "contract_violation".into(),
                    value: 1.9,
                },
            ),
            (100.0, TraceKind::HostFail { host: HostId(3) }),
        ]);
        let s = render_timeline(&tr, 40);
        assert!(s.contains('V'));
        assert!(s.contains('X'));
        assert!(s.contains("host h3 failed"));
        assert!(s.contains("ratio 1.90"));
    }

    #[test]
    fn empty_trace_renders_nothing() {
        let tr = Trace::default();
        assert_eq!(render_timeline(&tr, 60), "");
    }

    #[test]
    fn markers_stay_in_bounds() {
        let tr = trace_with(&[(
            1e6,
            TraceKind::Custom {
                label: "swap".into(),
                value: 0.0,
            },
        )]);
        let s = render_timeline(&tr, 30);
        assert!(s.lines().next().unwrap().contains('S'));
    }
}
