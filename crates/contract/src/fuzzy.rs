//! A small fuzzy-logic inference engine, after Autopilot's decision
//! mechanism.
//!
//! *"Autopilot provides sensors for performance data acquisition, actuators
//! for implementing optimization commands and a decision-making mechanism
//! based on fuzzy logic."* (§1)
//!
//! The engine is zero-order Sugeno: inputs are fuzzified through named
//! membership functions, rule activations combine with min (AND), and the
//! crisp output is the activation-weighted average of per-rule output
//! values. Deterministic and allocation-light — it runs inside the contract
//! monitor's periodic loop.

use std::collections::HashMap;

/// A membership function over a scalar input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Membership {
    /// Triangle with feet at `a` and `c`, peak at `b`.
    Tri(f64, f64, f64),
    /// Trapezoid with feet at `a` and `d`, plateau from `b` to `c`.
    Trap(f64, f64, f64, f64),
    /// 1 below `a`, falling to 0 at `b` (left shoulder).
    FallingEdge(f64, f64),
    /// 0 below `a`, rising to 1 at `b` (right shoulder).
    RisingEdge(f64, f64),
}

impl Membership {
    /// Degree of membership of `x`, in `[0, 1]`.
    pub fn eval(&self, x: f64) -> f64 {
        let ramp_up = |a: f64, b: f64| {
            if b <= a {
                if x >= a {
                    1.0
                } else {
                    0.0
                }
            } else {
                ((x - a) / (b - a)).clamp(0.0, 1.0)
            }
        };
        match *self {
            Membership::Tri(a, b, c) => {
                if x <= a || x >= c {
                    0.0
                } else if x <= b {
                    ramp_up(a, b)
                } else {
                    1.0 - ramp_up(b, c)
                }
            }
            Membership::Trap(a, b, c, d) => {
                if x <= a || x >= d {
                    0.0
                } else if x < b {
                    ramp_up(a, b)
                } else if x <= c {
                    1.0
                } else {
                    1.0 - ramp_up(c, d)
                }
            }
            Membership::FallingEdge(a, b) => 1.0 - ramp_up(a, b),
            Membership::RisingEdge(a, b) => ramp_up(a, b),
        }
    }
}

/// One antecedent clause: `input IS term`.
#[derive(Debug, Clone)]
pub struct Clause {
    /// Input variable name.
    pub var: String,
    /// Term (membership function) name within that variable.
    pub term: String,
}

/// A Sugeno rule: AND of clauses → crisp output contribution.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Antecedents, combined with min.
    pub clauses: Vec<Clause>,
    /// Output value contributed at full activation.
    pub output: f64,
}

/// The inference engine: variables with named terms, plus rules.
#[derive(Debug, Clone, Default)]
pub struct FuzzyEngine {
    vars: HashMap<String, HashMap<String, Membership>>,
    rules: Vec<Rule>,
}

impl FuzzyEngine {
    /// Empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Define a term for an input variable.
    pub fn term(&mut self, var: &str, term: &str, m: Membership) -> &mut Self {
        self.vars
            .entry(var.to_string())
            .or_default()
            .insert(term.to_string(), m);
        self
    }

    /// Add a rule: `clauses` is a list of `(var, term)` pairs.
    pub fn rule(&mut self, clauses: &[(&str, &str)], output: f64) -> &mut Self {
        self.rules.push(Rule {
            clauses: clauses
                .iter()
                .map(|(v, t)| Clause {
                    var: v.to_string(),
                    term: t.to_string(),
                })
                .collect(),
            output,
        });
        self
    }

    /// Run inference on crisp inputs. Returns the weighted-average output,
    /// or `None` if no rule fires (or the engine has no rules).
    ///
    /// # Panics
    /// Panics if a rule references an undefined variable or term — that is
    /// a construction bug, not a runtime condition.
    pub fn infer(&self, inputs: &HashMap<String, f64>) -> Option<f64> {
        let mut num = 0.0;
        let mut den = 0.0;
        for rule in &self.rules {
            let mut act: f64 = 1.0;
            for c in &rule.clauses {
                let x = *inputs
                    .get(&c.var)
                    .unwrap_or_else(|| panic!("missing input {:?}", c.var));
                let m = self
                    .vars
                    .get(&c.var)
                    .and_then(|ts| ts.get(&c.term))
                    .unwrap_or_else(|| panic!("undefined term {}.{}", c.var, c.term));
                act = act.min(m.eval(x));
            }
            num += act * rule.output;
            den += act;
        }
        (den > 1e-12).then(|| num / den)
    }
}

/// Build the contract monitor's standard violation engine: maps the
/// actual/predicted time ratio (relative to the tolerance band) to a
/// violation score in `[0, 1]`.
///
/// * ratio well inside the band → ~0
/// * ratio near the upper limit → ~0.5
/// * ratio far above the upper limit → ~1
pub fn violation_engine(upper: f64) -> FuzzyEngine {
    let mut e = FuzzyEngine::new();
    // Normalized ratio: 1.0 = exactly at prediction, `upper` = at the
    // tolerance limit.
    e.term("ratio", "good", Membership::FallingEdge(1.0, upper));
    e.term(
        "ratio",
        "marginal",
        Membership::Tri(1.0, upper, upper + (upper - 1.0)),
    );
    e.term(
        "ratio",
        "bad",
        Membership::RisingEdge(upper, upper + (upper - 1.0)),
    );
    e.rule(&[("ratio", "good")], 0.0);
    e.rule(&[("ratio", "marginal")], 0.5);
    e.rule(&[("ratio", "bad")], 1.0);
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_membership() {
        let m = Membership::Tri(0.0, 1.0, 2.0);
        assert_eq!(m.eval(-0.5), 0.0);
        assert_eq!(m.eval(0.5), 0.5);
        assert_eq!(m.eval(1.0), 1.0);
        assert_eq!(m.eval(1.5), 0.5);
        assert_eq!(m.eval(2.5), 0.0);
    }

    #[test]
    fn trapezoid_membership() {
        let m = Membership::Trap(0.0, 1.0, 2.0, 3.0);
        assert_eq!(m.eval(1.5), 1.0);
        assert_eq!(m.eval(0.5), 0.5);
        assert_eq!(m.eval(2.5), 0.5);
        assert_eq!(m.eval(3.5), 0.0);
    }

    #[test]
    fn edges() {
        let f = Membership::FallingEdge(1.0, 2.0);
        assert_eq!(f.eval(0.5), 1.0);
        assert_eq!(f.eval(1.5), 0.5);
        assert_eq!(f.eval(2.5), 0.0);
        let r = Membership::RisingEdge(1.0, 2.0);
        assert_eq!(r.eval(0.5), 0.0);
        assert_eq!(r.eval(2.5), 1.0);
    }

    #[test]
    fn inference_weighted_average() {
        let mut e = FuzzyEngine::new();
        e.term("x", "low", Membership::FallingEdge(0.0, 1.0));
        e.term("x", "high", Membership::RisingEdge(0.0, 1.0));
        e.rule(&[("x", "low")], 0.0);
        e.rule(&[("x", "high")], 10.0);
        let mut inp = HashMap::new();
        inp.insert("x".to_string(), 0.25);
        // low fires 0.75, high fires 0.25 -> 2.5.
        assert!((e.infer(&inp).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn and_uses_min() {
        let mut e = FuzzyEngine::new();
        e.term("a", "on", Membership::RisingEdge(0.0, 1.0));
        e.term("b", "on", Membership::RisingEdge(0.0, 1.0));
        e.rule(&[("a", "on"), ("b", "on")], 1.0);
        let mut inp = HashMap::new();
        inp.insert("a".to_string(), 0.9);
        inp.insert("b".to_string(), 0.2);
        // Activation = min(0.9, 0.2); single rule -> output 1.0 regardless
        // of activation magnitude (weighted average of one rule).
        assert!((e.infer(&inp).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_rule_fires_returns_none() {
        let mut e = FuzzyEngine::new();
        e.term("x", "band", Membership::Tri(0.0, 1.0, 2.0));
        e.rule(&[("x", "band")], 1.0);
        let mut inp = HashMap::new();
        inp.insert("x".to_string(), 5.0);
        assert!(e.infer(&inp).is_none());
    }

    #[test]
    fn violation_engine_scores_monotonically() {
        let e = violation_engine(1.5);
        let score = |r: f64| {
            let mut inp = HashMap::new();
            inp.insert("ratio".to_string(), r);
            e.infer(&inp).unwrap()
        };
        assert!(score(1.0) < 0.1);
        let s_mid = score(1.5);
        assert!(s_mid > 0.3 && s_mid < 0.7, "mid = {s_mid}");
        assert!(score(2.5) > 0.9);
        assert!(score(1.2) < score(1.6));
    }
}
