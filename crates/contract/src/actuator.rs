//! Actuators — the output half of Autopilot's closed loop.
//!
//! *"Autopilot provides sensors for performance data acquisition,
//! actuators for implementing optimization commands and a decision-making
//! mechanism based on fuzzy logic."* (§1)
//!
//! Sensors live on the `RankStats` channels; this module provides the
//! actuator side: named, typed set-points that a decision process writes
//! and application/runtime code reads, plus a small closed-loop controller
//! that drives an actuator from a fuzzy engine — the shape of every
//! Autopilot control loop.

use crate::fuzzy::FuzzyEngine;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A bus of named scalar set-points. Cloning shares the bus. Writers are
/// decision processes (monitors, reschedulers); readers are application
/// or runtime code that polls at convenient points.
#[derive(Clone, Default)]
pub struct ActuatorBus {
    inner: Arc<Mutex<HashMap<String, f64>>>,
}

impl ActuatorBus {
    /// Empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set (or create) an actuator's value.
    pub fn set(&self, name: &str, value: f64) {
        self.inner.lock().insert(name.to_string(), value);
    }

    /// Read an actuator, with a default for never-set names.
    pub fn get_or(&self, name: &str, default: f64) -> f64 {
        self.inner.lock().get(name).copied().unwrap_or(default)
    }

    /// Read an actuator if it has ever been set.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.inner.lock().get(name).copied()
    }

    /// Names currently on the bus, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.lock().keys().cloned().collect();
        v.sort();
        v
    }
}

/// A fuzzy closed-loop controller over one actuator: each step it
/// fuzzifies the observed inputs, infers a correction factor, and applies
/// it multiplicatively to the set-point (clamped to a range).
///
/// Example use: adapting the contract monitor's polling period — poll
/// faster while ratios degrade, back off when they are healthy — which is
/// precisely the kind of "optimization command" Autopilot actuated.
pub struct FuzzyController {
    /// The rule base mapping inputs to a multiplicative correction.
    pub engine: FuzzyEngine,
    /// Actuator name controlled.
    pub actuator: String,
    /// Bounds on the set-point.
    pub range: (f64, f64),
    /// The shared bus.
    pub bus: ActuatorBus,
}

impl FuzzyController {
    /// Observe inputs and update the actuator. Returns the new set-point.
    /// If no rule fires the set-point is left unchanged.
    pub fn step(&self, inputs: &HashMap<String, f64>, default: f64) -> f64 {
        let cur = self.bus.get_or(&self.actuator, default);
        let next = match self.engine.infer(inputs) {
            Some(factor) => (cur * factor).clamp(self.range.0, self.range.1),
            None => cur,
        };
        self.bus.set(&self.actuator, next);
        next
    }
}

/// Build the adaptive-poll-period controller: ratio ≈ 1 → relax the
/// period (×1.5), ratio high → tighten it (×0.5).
pub fn poll_period_controller(bus: ActuatorBus, min_s: f64, max_s: f64) -> FuzzyController {
    use crate::fuzzy::Membership;
    let mut engine = FuzzyEngine::new();
    engine.term("ratio", "healthy", Membership::FallingEdge(1.0, 1.3));
    engine.term("ratio", "degrading", Membership::Trap(1.1, 1.3, 1.7, 2.2));
    engine.term("ratio", "bad", Membership::RisingEdge(1.7, 2.5));
    engine.rule(&[("ratio", "healthy")], 1.5);
    engine.rule(&[("ratio", "degrading")], 0.8);
    engine.rule(&[("ratio", "bad")], 0.5);
    FuzzyController {
        engine,
        actuator: "monitor_period".to_string(),
        range: (min_s, max_s),
        bus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_set_get_roundtrip() {
        let bus = ActuatorBus::new();
        assert_eq!(bus.get("x"), None);
        assert_eq!(bus.get_or("x", 7.0), 7.0);
        bus.set("x", 3.0);
        assert_eq!(bus.get("x"), Some(3.0));
        let bus2 = bus.clone();
        bus2.set("y", 1.0);
        assert_eq!(bus.names(), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn controller_tightens_under_degradation() {
        let bus = ActuatorBus::new();
        let ctl = poll_period_controller(bus.clone(), 1.0, 60.0);
        bus.set("monitor_period", 20.0);
        let mut inp = HashMap::new();
        inp.insert("ratio".to_string(), 2.6); // clearly bad
        let p1 = ctl.step(&inp, 20.0);
        assert!((p1 - 10.0).abs() < 1e-9, "p1 = {p1}");
        let p2 = ctl.step(&inp, 20.0);
        assert!(p2 < p1);
        // Clamped at the floor eventually.
        for _ in 0..10 {
            ctl.step(&inp, 20.0);
        }
        assert_eq!(bus.get("monitor_period"), Some(1.0));
    }

    #[test]
    fn controller_relaxes_when_healthy() {
        let bus = ActuatorBus::new();
        let ctl = poll_period_controller(bus.clone(), 1.0, 60.0);
        bus.set("monitor_period", 10.0);
        let mut inp = HashMap::new();
        inp.insert("ratio".to_string(), 1.0);
        let p = ctl.step(&inp, 10.0);
        assert!((p - 15.0).abs() < 1e-9);
        for _ in 0..10 {
            ctl.step(&inp, 10.0);
        }
        assert_eq!(bus.get("monitor_period"), Some(60.0));
    }

    #[test]
    fn mixed_ratio_blends_rules() {
        let bus = ActuatorBus::new();
        let ctl = poll_period_controller(bus.clone(), 1.0, 60.0);
        bus.set("monitor_period", 20.0);
        let mut inp = HashMap::new();
        inp.insert("ratio".to_string(), 1.2); // healthy + degrading overlap
        let p = ctl.step(&inp, 20.0);
        assert!(p > 16.0 && p < 30.0, "blended correction: {p}");
    }

    #[test]
    fn controller_in_simulation_closed_loop() {
        // Drive the controller from inside the emulator: a monitor process
        // adapts its own poll period from observed ratios.
        use grads_sim::prelude::*;
        use grads_sim::topology::{GridBuilder, HostSpec};
        let mut b = GridBuilder::new();
        let c = b.cluster("X");
        let hs = b.add_hosts(c, 1, &HostSpec::with_speed(1e9));
        let mut eng = Engine::new(b.build().unwrap());
        let bus = ActuatorBus::new();
        let bus2 = bus.clone();
        eng.spawn("adaptive-monitor", hs[0], move |ctx| {
            let ctl = poll_period_controller(bus2.clone(), 1.0, 32.0);
            bus2.set("monitor_period", 16.0);
            // Phase 1: healthy ratios -> period grows.
            for _ in 0..4 {
                let period = bus2.get_or("monitor_period", 16.0);
                ctx.sleep(period);
                let mut inp = HashMap::new();
                inp.insert("ratio".to_string(), 1.0);
                ctl.step(&inp, 16.0);
            }
            let relaxed = bus2.get_or("monitor_period", 0.0);
            ctx.trace("relaxed", relaxed);
            // Phase 2: bad ratios -> period shrinks fast.
            for _ in 0..6 {
                let period = bus2.get_or("monitor_period", 16.0);
                ctx.sleep(period);
                let mut inp = HashMap::new();
                inp.insert("ratio".to_string(), 3.0);
                ctl.step(&inp, 16.0);
            }
            let tightened = bus2.get_or("monitor_period", 0.0);
            ctx.trace("tightened", tightened);
        });
        let r = eng.run();
        assert_eq!(r.trace.last_value("relaxed"), Some(32.0));
        assert_eq!(r.trace.last_value("tightened"), Some(1.0));
    }
}
