//! Jacobi heat diffusion in a swap world, with the Contract-Viewer-style
//! control-activity timeline: a loaded host slows the stencil sweep; the
//! swap rescheduler moves the affected rank; the timeline shows the load
//! event and the swap actuation.
//!
//! Run with: `cargo run --release -p grads-core --example heat_diffusion`

use grads_core::apps::jacobi::{jacobi_step, JacobiConfig, JacobiState};
use grads_core::contract::render_timeline;
use grads_core::mpi::launch_swap_world;
use grads_core::nws::NwsService;
use grads_core::reschedule::{run_swap_rescheduler, SwapPolicy};
use grads_core::sim::prelude::*;
use grads_core::sim::topology::GridBuilder;
use parking_lot::Mutex;
use std::sync::Arc;

fn main() {
    let mut b = GridBuilder::new();
    let c = b.cluster("POOL");
    b.local_link(c, 1e8, 1e-4);
    let hosts = b.add_hosts(c, 4, &HostSpec::with_speed(1e9));
    let grid = b.build().expect("valid topology");
    let mut eng = Engine::new(grid.clone());

    let cfg = JacobiConfig {
        n: 128,
        iters: 400,
        flops_per_cell: 2e4, // ~0.25 s/iteration/rank
        ..Default::default()
    };
    println!(
        "Jacobi {}x{} on 2 active + 2 inactive hosts; load hits the first host at t = 30 s\n",
        cfg.n, cfg.n
    );

    let done = Arc::new(Mutex::new(false));
    let done_w = done.clone();
    let cfg_step = cfg.clone();
    let sw = launch_swap_world(
        &mut eng,
        "heat",
        &hosts,
        2,
        8.0 * (cfg.n * cfg.n) as f64,
        {
            let cfg = cfg.clone();
            move |logical| JacobiState::new(&cfg, 2, logical)
        },
        move |ctx, comm, st| {
            let fin = jacobi_step(ctx, comm, &cfg_step, st);
            if fin && comm.rank() == 0 {
                *done_w.lock() = true;
            }
            fin
        },
    );

    // Sensors + swap rescheduler.
    let nws = Arc::new(Mutex::new(NwsService::new()));
    for &h in &hosts {
        let nws2 = nws.clone();
        let done2 = done.clone();
        let speed = grid.host(h).speed;
        eng.spawn(&format!("sensor-{h}"), h, move |ctx| {
            grads_core::nws::run_cpu_sensor(ctx, &nws2, speed, 1e6, 5.0, &move || *done2.lock());
        });
    }
    {
        let (sw2, nws2, done2, grid2) = (sw.clone(), nws.clone(), done.clone(), grid.clone());
        eng.spawn("swap-rescheduler", hosts[3], move |ctx| {
            run_swap_rescheduler(
                ctx,
                &sw2,
                &grid2,
                &nws2,
                SwapPolicy::Greedy { factor: 2.0 },
                10.0,
                &move || *done2.lock(),
            );
        });
    }
    eng.add_load_window(hosts[0], 30.0, None, 3.0);

    let report = eng.run_until(2000.0);
    let progress = report.trace.series("jacobi_iter");
    println!("time (s)  iteration");
    let mut last = -20.0;
    for &(t, it) in &progress {
        if t - last >= 15.0 {
            println!("{t:>8.1}  {it:>9.0}");
            last = t;
        }
    }
    println!(
        "\ncompleted {} iterations at t = {:.1} s; swaps: {}\n",
        progress.len(),
        progress.last().map(|&(t, _)| t).unwrap_or(0.0),
        sw.swaps_done()
    );
    // The Contract-Viewer analog: what the control loop did, and when.
    print!("{}", render_timeline(&report.trace, 60));
}
