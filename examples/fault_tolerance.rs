//! Fault-tolerant execution (the paper's §5 future-work capability, built
//! from its own machinery): periodic SRS checkpoints to stable IBP
//! storage, heartbeat-based failure suspicion, restart on survivors.
//!
//! Run with: `cargo run --release -p grads-core --example fault_tolerance`

use grads_core::apps::{run_ft_experiment, FtExperimentConfig};
use grads_core::sim::topology::macrogrid_qr;

fn main() {
    let grid = macrogrid_qr();
    let workers = grid.hosts_of("UTK");
    let depot = grid.hosts_of("UIUC")[0];
    println!("QR N=8000 on the UTK cluster, periodic checkpoints to a UIUC depot;");
    println!("utk-0 fails permanently at t = 120 s.\n");

    let cfg = FtExperimentConfig::default();
    let r = run_ft_experiment(grid, &workers, depot, cfg);
    println!("completed:   {}", r.completed);
    println!("recoveries:  {}", r.recoveries);
    println!("lost steps:  {} (recomputed after restart)", r.lost_steps);
    println!("total time:  {:.1} virtual seconds", r.total_time);
    println!(
        "final hosts: {:?} (the failed host is gone)",
        r.final_hosts
            .iter()
            .map(|h| format!("{h}"))
            .collect::<Vec<_>>()
    );
    println!("died with the host: {:?}", r.died);
    assert!(r.completed, "the factorization must survive the failure");
}
