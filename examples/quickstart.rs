//! Quickstart: build a small grid, run an MPI-style program on it, and
//! schedule a tiny workflow — the three core moves of the framework.
//!
//! Run with: `cargo run -p grads-core --example quickstart`

use grads_core::prelude::*;
use grads_core::sched::evaluate_placement;
use std::sync::Arc;

fn main() {
    // ------------------------------------------------------------------
    // 1. Describe a grid: two clusters joined by a WAN link.
    // ------------------------------------------------------------------
    let mut b = GridBuilder::new();
    let fast = b.cluster("FAST");
    b.add_hosts(fast, 2, &HostSpec::with_speed(2e9));
    let slow = b.cluster("SLOW");
    b.add_hosts(slow, 4, &HostSpec::with_speed(5e8));
    b.connect(fast, slow, 10e6, 0.02); // 10 MB/s, 20 ms
    let grid = b.build().expect("valid topology");
    println!(
        "grid: {} hosts in {} clusters",
        grid.hosts().len(),
        grid.clusters().len()
    );

    // ------------------------------------------------------------------
    // 2. Run a message-passing program on the emulated grid.
    // ------------------------------------------------------------------
    let mut eng = Engine::new(grid.clone());
    let hosts: Vec<HostId> = (0..4).map(HostId).collect();
    grads_core::mpi::launch(&mut eng, "hello", &hosts, |ctx, comm| {
        // Each rank computes, then all-reduces its rank number.
        comm.compute(ctx, 1e9);
        let sum = comm.allreduce_t(ctx, 8.0, comm.rank() as u64, |a, b| a + b);
        if comm.rank() == 0 {
            ctx.trace("rank_sum", sum as f64);
            let t = ctx.now();
            ctx.trace("elapsed", t);
        }
    });
    let report = eng.run();
    println!(
        "mpi run: rank sum = {}, elapsed = {:.3} virtual seconds",
        report.trace.last_value("rank_sum").unwrap(),
        report.trace.last_value("elapsed").unwrap()
    );

    // ------------------------------------------------------------------
    // 3. Schedule a workflow with the GrADS heuristics.
    // ------------------------------------------------------------------
    let nws = NwsService::new();
    let resources: Vec<ResourceInfo> = (0..grid.hosts().len() as u32)
        .map(|i| ResourceInfo::from_grid(&grid, &nws, HostId(i)))
        .collect();
    let mut wf = Workflow::new();
    let pre = wf.add_component(
        "preprocess",
        Arc::new(FittedModel {
            problem_size: 1.0,
            ops: OpCountModel {
                coeffs: vec![4e9],
                degree: 0,
                rms_rel_residual: 0.0,
            },
            mrd: None,
            input_bytes: 0.0,
            output_bytes: 50e6,
            min_memory: 0,
            allowed: None,
        }),
    );
    for i in 0..6 {
        let c = wf.add_component(
            &format!("analyze{i}"),
            Arc::new(FittedModel {
                problem_size: 1.0,
                ops: OpCountModel {
                    coeffs: vec![8e9],
                    degree: 0,
                    rms_rel_residual: 0.0,
                },
                mrd: None,
                input_bytes: 50e6,
                output_bytes: 1e6,
                min_memory: 0,
                allowed: None,
            }),
        );
        wf.add_edge(pre, c, 50e6);
    }
    let (schedule, per_heuristic) =
        WorkflowScheduler::default().schedule(&wf, &grid, &nws, &resources);
    println!("workflow schedule (winner: {}):", schedule.strategy);
    for (name, makespan) in &per_heuristic {
        println!("  {name:<10} makespan {makespan:>8.2} s");
    }
    for (c, &r) in schedule.placement.iter().enumerate() {
        println!(
            "  {} -> {}",
            wf.components[c].name,
            grid.host(resources[r].host).name
        );
    }
    // Sanity: the placement evaluates to the same makespan.
    let again = evaluate_placement(&wf, &grid, &nws, &resources, &schedule.placement, "check");
    assert!((again.makespan - schedule.makespan).abs() < 1e-9);
    println!("makespan: {:.2} virtual seconds", schedule.makespan);
}
