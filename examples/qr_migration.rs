//! The §4.1 stop/migrate/restart experiment at one problem size: run the
//! QR factorization on the MacroGrid testbed, inject load, and compare the
//! rescheduler's decision against both forced branches — one Figure 3 bar
//! pair.
//!
//! Run with: `cargo run --release -p grads-core --example qr_migration [N]`

use grads_core::prelude::*;
use grads_core::sim::topology::macrogrid_qr;

fn run(n: usize, mode: ReschedulerMode) -> grads_core::apps::QrExperimentResult {
    let mut cfg = QrExperimentConfig::paper(n);
    cfg.mode = mode;
    run_qr_experiment(macrogrid_qr(), cfg)
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    println!("QR stop/restart experiment, nominal N = {n}");
    println!("testbed: 4x933 MHz dual-CPU UTK + 8x450 MHz UIUC, Internet WAN");
    println!("load: 6 competing processes on utk-0 at t = 300 s\n");

    let default = run(n, ReschedulerMode::Default);
    let stay = run(n, ReschedulerMode::ForceStay);
    let migrate = run(n, ReschedulerMode::ForceMigrate);

    let show = |label: &str, r: &grads_core::apps::QrExperimentResult| {
        let b = &r.breakdown;
        println!(
            "{label:<14} total {:>8.1} s  (migrated: {})",
            r.total_time, r.migrated
        );
        println!(
            "    selection {:>6.1}  modeling {:>6.1}  grid-ovh {:>6.1}  start {:>6.1}",
            b.resource_selection, b.perf_modeling, b.grid_overhead, b.app_start
        );
        println!(
            "    ckpt-write {:>5.1}  ckpt-read {:>6.1}  app {:>9.1}",
            b.checkpoint_write, b.checkpoint_read, b.app_duration
        );
    };
    show("no-resched", &stay);
    show("resched", &migrate);
    show("default", &default);

    if let Some(d) = &default.decision {
        println!(
            "\nrescheduler decision: migrate = {} (remaining here {:.0} s, there {:.0} s, overhead {:.0} s, benefit {:.0} s)",
            d.migrate, d.remaining_current, d.remaining_new, d.overhead_used, d.benefit
        );
        let gap = (stay.total_time - migrate.total_time).abs();
        let verdict = if gap < 0.02 * stay.total_time {
            "a TIE (either choice fine)".to_string()
        } else {
            let right_call = if stay.total_time < migrate.total_time {
                !default.migrated
            } else {
                default.migrated
            };
            (if right_call { "RIGHT" } else { "WRONG" }).to_string()
        };
        println!(
            "ground truth: stay {:.0} s vs migrate {:.0} s -> the rescheduler was {}",
            stay.total_time, migrate.total_time, verdict
        );
    } else {
        println!("\nno contract violation occurred (load did not hit the schedule)");
    }
}
