//! The §3.3 workflow-scheduling demonstration: schedule the EMAN
//! refinement workflow onto a heterogeneous (IA-32 + IA-64 + campus pool)
//! grid with the GrADS heuristics, compare against baselines, and execute
//! the winning schedule on the emulated grid.
//!
//! Run with: `cargo run --release -p grads-core --example eman_refinement`

use grads_core::apps::wf_exec::execute_workflow;
use grads_core::prelude::*;
use grads_core::sched::{schedule_heft, schedule_random, schedule_round_robin};

fn main() {
    let cfg = EmanConfig::default();
    let (wf, stages) = eman_workflow(&cfg);
    let grid = eman_grid();
    let nws = NwsService::new();
    let resources: Vec<ResourceInfo> = (0..grid.hosts().len() as u32)
        .map(|i| ResourceInfo::from_grid(&grid, &nws, HostId(i)))
        .collect();
    println!(
        "EMAN refinement: {} particles, {} classes, {}-wide classification",
        cfg.n_particles, cfg.n_classes, cfg.classify_par
    );
    println!(
        "grid: {} IA-32 + {} IA-64 + {} pool hosts\n",
        grid.hosts_of("IA32").len(),
        grid.hosts_of("IA64").len(),
        grid.hosts_of("POOL").len()
    );

    let (best, per) = WorkflowScheduler::default().schedule(&wf, &grid, &nws, &resources);
    println!("predicted makespans:");
    for (name, mk) in &per {
        println!("  {name:<14} {mk:>10.1} s");
    }
    for (name, s) in [
        ("heft", schedule_heft(&wf, &grid, &nws, &resources)),
        (
            "round-robin",
            schedule_round_robin(&wf, &grid, &nws, &resources),
        ),
        ("random", schedule_random(&wf, &grid, &nws, &resources, 1)),
    ] {
        println!("  {name:<14} {:>10.1} s", s.makespan);
    }
    println!(
        "\nwinning strategy: {} ({:.1} s)",
        best.strategy, best.makespan
    );

    println!("\nclassification placement (the parallel stage):");
    for &c in &stages.classify {
        let r = &resources[best.placement[c]];
        println!(
            "  {:<16} -> {:<8} ({})",
            wf.components[c].name,
            grid.host(r.host).name,
            r.arch
        );
    }

    let exec = execute_workflow(&grid, &wf, &best, &resources);
    println!(
        "\nemulated execution: {:.1} s (predicted {:.1} s, ratio {:.2})",
        exec.makespan,
        best.makespan,
        exec.makespan / best.makespan
    );
}
