//! Parameter-sweep scheduling with file-reuse-aware heuristics — the
//! HCW 2000 setting ([3] in the paper) the GrADS heuristics descend from.
//!
//! Run with: `cargo run --release -p grads-core --example parameter_sweep`

use grads_core::apps::psa::{execute_psa, generate, schedule_psa, PsaConfig, PsaStrategy};
use grads_core::nws::NwsService;
use grads_core::sim::parse_dml;

const TOPOLOGY: &str = r#"
# Storage site plus two compute clusters (DML-style description, §4.2.2).
cluster STORAGE {
    hosts 1
    speed 1e9
    link 1e8 1e-4
}
cluster FAST {
    hosts 4
    speed 3e9
    link 1e8 1e-4
}
cluster SLOW {
    hosts 4
    speed 1.5e9
    link 1e8 1e-4
}
connect STORAGE FAST 1e7 0.02
connect STORAGE SLOW 1e7 0.02
connect FAST SLOW 1e7 0.01
"#;

fn main() {
    let grid = parse_dml(TOPOLOGY).expect("valid DML");
    let storage = grid.hosts_of("STORAGE")[0];
    let mut hosts = grid.hosts_of("FAST");
    hosts.extend(grid.hosts_of("SLOW"));
    let nws = NwsService::new();

    let cfg = PsaConfig {
        n_tasks: 60,
        n_files: 6,
        file_bytes: 1e9, // 1 GB shared inputs: staging dominates
        ..Default::default()
    };
    let wl = generate(&cfg);
    println!(
        "sweep: {} tasks sharing {} one-GB input files, staged from {}\n",
        cfg.n_tasks,
        cfg.n_files,
        grid.host(storage).name
    );
    println!(
        "{:<14} {:>14} {:>14}",
        "strategy", "predicted(s)", "emulated(s)"
    );
    for strategy in PsaStrategy::all() {
        let sched = schedule_psa(&wl, &grid, &nws, &hosts, storage, strategy);
        let measured = execute_psa(&grid, &wl, &sched, &hosts, storage);
        println!(
            "{:<14} {:>14.1} {:>14.1}",
            strategy.name(),
            sched.makespan,
            measured
        );
    }
    println!("\nXSufferage (cluster-level, file-reuse-aware sufferage) should lead once");
    println!("shared files are large; round-robin re-stages files and pays for it.");
}
