//! The §4.2 process-swapping experiment on the MicroGrid: N-body over an
//! active/inactive machine pool, competing load at t = 80 s, swap
//! rescheduler restoring progress — the Figure 4 run.
//!
//! Run with: `cargo run --release -p grads-core --example nbody_swap`

use grads_core::prelude::*;
use grads_core::sim::topology::microgrid_nbody;

fn main() {
    let grid = microgrid_nbody();
    let mut workers = grid.hosts_of("UTK");
    workers.extend(grid.hosts_of("UIUC"));
    let monitor = grid.hosts_of("UCSD")[0];
    println!("MicroGrid: 3x550 MHz UTK (active) + 3x450 MHz UIUC (inactive), monitor on UCSD");
    println!("load: 2 competing processes on utk-0 at t = 80 s\n");

    let ecfg = NbodyExperimentConfig {
        app: NbodyConfig {
            n_bodies: 96,
            iters: 300,
            flops_per_pair: 2e5,
            ..Default::default()
        },
        ..Default::default()
    };
    let r = run_nbody_experiment(grid, &workers, monitor, ecfg);

    println!("time (s)  iteration");
    let mut last_shown = -30.0;
    for &(t, it) in &r.progress {
        if t - last_shown >= 20.0 {
            println!("{t:>8.1}  {it:>9.0}");
            last_shown = t;
        }
    }
    for &(t, logical) in &r.swaps {
        println!("swap: logical rank {logical:.0} moved at t = {t:.1} s");
    }
    println!(
        "completed {} iterations at t = {:.1} s",
        r.progress.len(),
        r.end_time
    );
}
